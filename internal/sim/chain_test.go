package sim

import (
	"math/rand"
	"testing"
	"time"

	"maya/internal/trace"
)

// nopObserver is an observer that records nothing. Its presence
// disables batched chain dispatch, so runs with it take the
// one-event-per-op path.
type nopObserver struct{}

func (nopObserver) OpStart(int, int64, *trace.Op, int64, int64)                        {}
func (nopObserver) OpEnd(int, int64, *trace.Op, int64, int64)                          {}
func (nopObserver) CollectiveFired(int, int64, *trace.Op, trace.CollKey, int64, int64) {}
func (nopObserver) StallBegin(int, int64, StallKind, int64)                            {}
func (nopObserver) StallEnd(int, int64, StallKind, int64, int64)                       {}
func (nopObserver) HostDelay(int, int64, int64)                                        {}
func (nopObserver) Mark(int, string, int64)                                            {}

// chainFixture builds a randomized deadlock-free multi-worker job: a
// shared program of segments (compute bursts, collectives, event
// record/wait hops across streams, syncs, marks) with per-rank
// durations, exercising every op kind the chain batcher must either
// absorb or break on.
func chainFixture(t *testing.T, seed int64) *trace.Job {
	rng := rand.New(rand.NewSource(seed))
	world := 2 + rng.Intn(3)
	ws := make([]*trace.Worker, world)
	for r := range ws {
		ws[r] = &trace.Worker{Rank: r, World: world, Device: "test"}
	}
	dur := func() time.Duration {
		return time.Duration(17+rng.Intn(997)) * time.Microsecond
	}
	collSeq := 0
	event := int64(0)
	segments := 12 + rng.Intn(12)
	for s := 0; s < segments; s++ {
		switch rng.Intn(6) {
		case 0, 1: // compute burst: a chainable run of timed ops
			n := 1 + rng.Intn(8)
			stream := int64(1 + rng.Intn(2))
			kinds := []trace.Kind{trace.KindKernel, trace.KindMemcpy, trace.KindMemset}
			for i := 0; i < n; i++ {
				kind := kinds[rng.Intn(len(kinds))]
				for _, w := range ws {
					w.Append(trace.Op{Kind: kind, Name: "op", Stream: stream, Dur: dur()})
				}
			}
		case 2: // collective on every rank
			stream := int64(1 + rng.Intn(2))
			d := dur()
			for r, w := range ws {
				w.Append(coll(stream, 42, collSeq, world, r, d))
			}
			collSeq++
		case 3: // event hop: record on stream 1, wait on stream 2
			event++
			for _, w := range ws {
				w.Append(kernel(1, dur()))
				w.Append(trace.Op{Kind: trace.KindEventRecord, Stream: 1, Event: event, EventVer: 1})
				w.Append(trace.Op{Kind: trace.KindStreamWait, Stream: 2, Event: event, EventVer: 1})
				w.Append(kernel(2, dur()))
			}
		case 4: // host-side pause then device sync
			for _, w := range ws {
				w.Append(hostDelay(dur()))
				w.Append(trace.Op{Kind: trace.KindDeviceSync})
			}
		case 5: // iteration mark
			for _, w := range ws {
				w.Append(trace.Op{Kind: trace.KindMark, Name: "iter"})
			}
		}
	}
	for _, w := range ws {
		w.Append(trace.Op{Kind: trace.KindDeviceSync})
	}
	return job(t, ws...)
}

// TestChainedDispatchMatchesUnchained pins the batched dispatch fast
// path to the one-event-per-op semantics: with an observer attached
// (which disables chaining) and without, every report field must be
// identical, across randomized traces and with jitter on.
func TestChainedDispatchMatchesUnchained(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		j := chainFixture(t, seed)
		chained := mustRun(t, j, Options{})
		unchained := mustRun(t, j, Options{Observer: nopObserver{}})
		if !reportsEqual(chained, unchained) {
			t.Fatalf("seed %d: chained dispatch diverged:\n chained %+v\n unchained %+v",
				seed, chained, unchained)
		}

		jopts := Options{JitterFrac: 0.05, Seed: uint64(seed) + 1}
		jc := mustRun(t, j, jopts)
		jopts.Observer = nopObserver{}
		ju := mustRun(t, j, jopts)
		if !reportsEqual(jc, ju) {
			t.Fatalf("seed %d: chained dispatch diverged under jitter", seed)
		}
	}
}
