package sim

import "maya/internal/trace"

// CollDemand is one collective's network footprint: the link domains
// its traffic occupies (topo link-domain ids, ascending) and the
// latency portion of its duration, in nanoseconds. The annotated
// duration stays authoritative — congestion stretches only the
// bandwidth-bound remainder (annotated duration minus Lat), so a
// collective that never shares a link completes exactly as annotated.
type CollDemand struct {
	Links []int32
	Lat   int64
}

// CongestionModel makes collective durations resolve against a
// shared-link occupancy model instead of replaying verbatim: when
// concurrently-active collectives occupy the same link domain beyond
// its width, each flow on that domain is slowed by the overcommit
// factor ceil(active/width), re-evaluated at every flow start and
// finish. Collectives whose key has no demand (or an empty link set)
// fall back to the fixed-duration path.
//
// The model is an integer fluid simulation inside the deterministic
// event loop: progress accrues in whole nanoseconds at rate 1/factor,
// retuned at flow boundaries, so results are bit-identical across
// runs, engine pooling and worker counts.
type CongestionModel struct {
	// Widths is the per-link-domain capacity (topo.LinkWidths): a
	// domain of width k serves k concurrent flows at full rate.
	Widths []int32
	// Demands maps collective calls to their footprints.
	Demands map[trace.CollKey]CollDemand
}

// congFlow is one in-flight collective under congestion. latRem
// drains in real time; workRem drains at rate 1/factor.
type congFlow struct {
	key     trace.CollKey
	links   []int32 // aliases the demand's slice; dropped on finish
	group   *collGroup
	latRem  int64
	workRem int64
	factor  int64 // current slowdown; 0 = sentinel forcing first tune
	lastUpd int64 // sim time progress has been accrued to
	started int64
	epoch   int64 // invalidates superseded completion events
	active  bool
}

// fireFlow converts a released collective group into a congestion
// flow: stalls end at startAt, but the completion is resolved against
// link occupancy. dur is the post-jitter annotated duration. A group
// can release with a start time still in the future (host enqueue
// times run ahead of device time); its links are then occupied from
// startAt, via an evFlowStart event, not from the release instant.
func (e *Engine) fireFlow(key trace.CollKey, g *collGroup, d CollDemand, startAt, dur int64) {
	var f *congFlow
	if n := len(e.freeFlows); n > 0 {
		f = e.freeFlows[n-1]
		e.freeFlows[n-1] = nil
		e.freeFlows = e.freeFlows[:n-1]
	} else {
		f = &congFlow{}
	}
	lat := min(d.Lat, dur)
	if lat < 0 {
		lat = 0
	}
	f.key, f.links, f.group = key, d.Links, g
	f.latRem, f.workRem = lat, dur-lat
	f.factor, f.lastUpd, f.started = 0, startAt, startAt
	f.active = true
	if e.obs != nil {
		for i, p := range g.arrived {
			e.obs.StallEnd(p.w, p.id, StallCollective, g.arriveAt[i], startAt)
		}
	}
	if startAt > e.now {
		f.epoch++
		e.push(simEvent{t: startAt, kind: evFlowStart, flow: f, arg: f.epoch})
		return
	}
	e.startFlow(f)
}

// startFlow joins a flow into the occupancy model.
func (e *Engine) startFlow(f *congFlow) {
	// A release instant after the start time (both can trail sim time)
	// means the flow already ran uncontended for the gap: drain it at
	// full rate before occupancy tracking begins.
	if e.now > f.lastUpd {
		el := e.now - f.lastUpd
		f.lastUpd = e.now
		if f.latRem > 0 {
			d := min(el, f.latRem)
			f.latRem -= d
			el -= d
		}
		if el > 0 {
			f.workRem -= min(el, f.workRem)
		}
	}
	e.flows = append(e.flows, f)
	for _, l := range f.links {
		e.linkUse[l]++
	}
	e.retuneFlows()
}

// flowStart handles a deferred flow start event.
func (e *Engine) flowStart(f *congFlow, epoch int64) {
	if !f.active || f.epoch != epoch {
		return
	}
	e.startFlow(f)
}

// flowFactor is the slowdown of a flow right now: the worst
// overcommit ceil(use/width) across the link domains it occupies.
func (e *Engine) flowFactor(f *congFlow) int64 {
	factor := int64(1)
	for _, l := range f.links {
		w := e.cong.Widths[l]
		if w < 1 {
			w = 1
		}
		if c := int64((e.linkUse[l] + w - 1) / w); c > factor {
			factor = c
		}
	}
	return factor
}

// advanceFlow accrues a flow's progress from lastUpd to now at its
// current factor: latency drains in real time, then work at rate
// 1/factor (integer floor — deterministic and conservative).
func (e *Engine) advanceFlow(f *congFlow) {
	if e.now <= f.lastUpd {
		return
	}
	el := e.now - f.lastUpd
	f.lastUpd = e.now
	if f.factor <= 0 {
		return
	}
	if f.latRem > 0 {
		d := min(el, f.latRem)
		f.latRem -= d
		el -= d
	}
	if el > 0 && f.workRem > 0 {
		done := el / f.factor
		if done > f.workRem {
			done = f.workRem
		}
		f.workRem -= done
	}
}

// retuneFlows re-evaluates every active flow's factor after link
// occupancy changed, rescheduling completions whose rate moved. Flows
// are visited in start order, so the event sequence is deterministic.
func (e *Engine) retuneFlows() {
	for _, f := range e.flows {
		nf := e.flowFactor(f)
		if nf == f.factor {
			continue
		}
		e.advanceFlow(f)
		f.factor = nf
		f.epoch++
		e.push(simEvent{t: f.lastUpd + f.latRem + f.workRem*nf, kind: evFlowDone, flow: f, arg: f.epoch})
	}
}

// flowDone handles a flow completion event. Stale epochs are
// completions superseded by a retune.
func (e *Engine) flowDone(f *congFlow, epoch int64) {
	if !f.active || f.epoch != epoch {
		return
	}
	e.advanceFlow(f)
	if f.latRem > 0 || f.workRem > 0 {
		// Integer rounding left a residue; finish it at the current rate.
		f.epoch++
		e.push(simEvent{t: f.lastUpd + f.latRem + f.workRem*f.factor, kind: evFlowDone, flow: f, arg: f.epoch})
		return
	}
	f.active = false
	for i, x := range e.flows {
		if x == f {
			copy(e.flows[i:], e.flows[i+1:])
			e.flows[len(e.flows)-1] = nil
			e.flows = e.flows[:len(e.flows)-1]
			break
		}
	}
	for _, l := range f.links {
		e.linkUse[l]--
	}
	e.retuneFlows()

	g, end := f.group, e.now
	for _, p := range g.arrived {
		e.intervals[p.w] = append(e.intervals[p.w], interval{start: f.started, end: end, comm: true})
		if e.obs != nil {
			e.obs.CollectiveFired(p.w, p.id, p.queue[p.head].op, f.key, f.started, end)
		}
		p.stalledCol = false
		p.head++
		p.freeAt = max(p.freeAt, end)
		e.kickStream(p)
		e.notifyDrain(p.w)
	}
	e.recycleColl(g)
	f.group, f.links = nil, nil
	e.freeFlows = append(e.freeFlows, f)
	// epoch deliberately survives recycling: any stale events of this
	// incarnation still in the heap carry older epochs and are dropped.
	// Absolute epoch values never influence event times or ordering,
	// so pooled and fresh engines stay bit-identical.
}
