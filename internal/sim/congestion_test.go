package sim

import (
	"context"
	"sync"
	"testing"
	"time"

	"maya/internal/trace"
)

// pairColl builds a named-communicator collective op for pair tests.
func collOn(stream int64, comm uint64, seq, nranks, rank int, dur time.Duration) trace.Op {
	return coll(stream, comm, seq, nranks, rank, dur)
}

func key(comm uint64, seq int) trace.CollKey {
	return trace.CollKey{Comm: comm, Seq: seq}
}

// Two independent pair collectives firing together on a width-1 link
// each take twice their annotated duration: the link's bandwidth is
// split while both are active.
func TestCongestionSharedLinkSplitsBandwidth(t *testing.T) {
	j := job(t,
		worker(0, 4, collOn(0, 1, 0, 2, 0, time.Millisecond)),
		worker(1, 4, collOn(0, 1, 0, 2, 1, time.Millisecond)),
		worker(2, 4, collOn(0, 2, 0, 2, 0, time.Millisecond)),
		worker(3, 4, collOn(0, 2, 0, 2, 1, time.Millisecond)),
	)
	cong := &CongestionModel{
		Widths: []int32{1},
		Demands: map[trace.CollKey]CollDemand{
			key(1, 0): {Links: []int32{0}},
			key(2, 0): {Links: []int32{0}},
		},
	}
	r := mustRun(t, j, Options{Congestion: cong})
	for w := 0; w < 4; w++ {
		if got := r.CommBusy[w]; got != 2*time.Millisecond {
			t.Fatalf("worker %d comm busy = %v, want 2ms (bandwidth split)", w, got)
		}
	}
	if r.Makespan != 2*time.Millisecond {
		t.Fatalf("makespan = %v, want 2ms", r.Makespan)
	}

	// Double the link width and the same two flows fit at full rate.
	cong.Widths = []int32{2}
	r = mustRun(t, j, Options{Congestion: cong})
	if r.Makespan != time.Millisecond {
		t.Fatalf("width-2 makespan = %v, want 1ms", r.Makespan)
	}

	// Disjoint links: no interference.
	cong.Widths = []int32{1, 1}
	cong.Demands[key(2, 0)] = CollDemand{Links: []int32{1}}
	r = mustRun(t, j, Options{Congestion: cong})
	if r.Makespan != time.Millisecond {
		t.Fatalf("disjoint-links makespan = %v, want 1ms", r.Makespan)
	}
}

// A staggered arrival retunes in-flight flows: the early flow runs
// alone, is halved while sharing, and the survivor speeds back up.
func TestCongestionRetunesOnArrivalAndDeparture(t *testing.T) {
	j := job(t,
		worker(0, 4, collOn(0, 1, 0, 2, 0, 2*time.Millisecond)),
		worker(1, 4, collOn(0, 1, 0, 2, 1, 2*time.Millisecond)),
		worker(2, 4, hostDelay(time.Millisecond), collOn(0, 2, 0, 2, 0, 2*time.Millisecond)),
		worker(3, 4, hostDelay(time.Millisecond), collOn(0, 2, 0, 2, 1, 2*time.Millisecond)),
	)
	cong := &CongestionModel{
		Widths: []int32{1},
		Demands: map[trace.CollKey]CollDemand{
			key(1, 0): {Links: []int32{0}},
			key(2, 0): {Links: []int32{0}},
		},
	}
	r := mustRun(t, j, Options{Congestion: cong})
	// Flow A: 1ms alone + 1ms remaining at half rate -> done at 3ms.
	if got := r.CommBusy[0]; got != 3*time.Millisecond {
		t.Fatalf("early flow busy = %v, want 3ms", got)
	}
	// Flow B: starts at 1ms, half rate until 3ms (1ms of work done),
	// then full rate for the last 1ms -> done at 4ms.
	if got := r.CommBusy[2]; got != 3*time.Millisecond {
		t.Fatalf("late flow busy = %v, want 3ms (1ms..4ms)", got)
	}
	if r.Makespan != 4*time.Millisecond {
		t.Fatalf("makespan = %v, want 4ms", r.Makespan)
	}
}

// Only the bandwidth-bound part of a collective stretches: the
// latency portion of the demand drains in real time regardless of
// link sharing.
func TestCongestionLatencyPortionDoesNotStretch(t *testing.T) {
	j := job(t,
		worker(0, 4, collOn(0, 1, 0, 2, 0, time.Millisecond)),
		worker(1, 4, collOn(0, 1, 0, 2, 1, time.Millisecond)),
		worker(2, 4, collOn(0, 2, 0, 2, 0, 10*time.Millisecond)),
		worker(3, 4, collOn(0, 2, 0, 2, 1, 10*time.Millisecond)),
	)
	cong := &CongestionModel{
		Widths: []int32{1},
		Demands: map[trace.CollKey]CollDemand{
			key(1, 0): {Links: []int32{0}, Lat: int64(400 * time.Microsecond)},
			key(2, 0): {Links: []int32{0}},
		},
	}
	r := mustRun(t, j, Options{Congestion: cong})
	// Flow A: 0.4ms latency + 0.6ms work at half rate = 1.6ms.
	if got := r.CommBusy[0]; got != 1600*time.Microsecond {
		t.Fatalf("latency-heavy flow busy = %v, want 1.6ms", got)
	}
	// Flow B: half rate for 1.6ms (0.8ms done), then full rate for the
	// remaining 9.2ms -> done at 10.8ms.
	if r.Makespan != 10800*time.Microsecond {
		t.Fatalf("makespan = %v, want 10.8ms", r.Makespan)
	}
}

// A collective whose key has no demand replays verbatim even in
// congestion mode, and a run where flows never overlap is identical
// to the uncongested run.
func TestCongestionSoloFlowsMatchUncongested(t *testing.T) {
	mk := func() *trace.Job {
		return job(t,
			worker(0, 2,
				kernel(0, time.Millisecond),
				collOn(0, 7, 0, 2, 0, 2*time.Millisecond),
				kernel(0, 500*time.Microsecond),
				collOn(0, 7, 1, 2, 0, time.Millisecond),
			),
			worker(1, 2,
				collOn(0, 7, 0, 2, 1, 2*time.Millisecond),
				kernel(0, 2*time.Millisecond),
				collOn(0, 7, 1, 2, 1, time.Millisecond),
			),
		)
	}
	base := mustRun(t, mk(), Options{})
	cong := &CongestionModel{
		Widths: []int32{1, 4},
		Demands: map[trace.CollKey]CollDemand{
			key(7, 0): {Links: []int32{0, 1}, Lat: int64(5 * time.Microsecond)},
			// key(7,1) missing: fixed-duration fallback.
		},
	}
	got := mustRun(t, mk(), Options{Congestion: cong})
	if !reportsEqual(base, got) {
		t.Fatalf("solo congested run differs from uncongested:\n%+v\nvs\n%+v", got, base)
	}
}

// congestedFixture is a contention-heavy 4-worker job: pair
// collectives overlapping on a shared uplink, a world collective, and
// interleaved compute.
func congestedFixture(t *testing.T) (*trace.Job, *CongestionModel) {
	t.Helper()
	j := job(t,
		worker(0, 4,
			kernel(0, 200*time.Microsecond),
			collOn(0, 1, 0, 2, 0, time.Millisecond),
			collOn(0, 9, 0, 4, 0, 2*time.Millisecond),
			kernel(0, 100*time.Microsecond),
			collOn(0, 1, 1, 2, 0, 500*time.Microsecond),
		),
		worker(1, 4,
			collOn(0, 1, 0, 2, 1, time.Millisecond),
			collOn(0, 9, 0, 4, 1, 2*time.Millisecond),
			collOn(0, 1, 1, 2, 1, 500*time.Microsecond),
		),
		worker(2, 4,
			kernel(0, 50*time.Microsecond),
			collOn(0, 2, 0, 2, 0, 1500*time.Microsecond),
			collOn(0, 9, 0, 4, 2, 2*time.Millisecond),
			collOn(0, 2, 1, 2, 0, 700*time.Microsecond),
		),
		worker(3, 4,
			collOn(0, 2, 0, 2, 1, 1500*time.Microsecond),
			collOn(0, 9, 0, 4, 3, 2*time.Millisecond),
			kernel(0, 300*time.Microsecond),
			collOn(0, 2, 1, 2, 1, 700*time.Microsecond),
		),
	)
	cong := &CongestionModel{
		Widths: []int32{1, 1, 1},
		Demands: map[trace.CollKey]CollDemand{
			key(1, 0): {Links: []int32{0, 2}, Lat: int64(10 * time.Microsecond)},
			key(1, 1): {Links: []int32{0, 2}, Lat: int64(10 * time.Microsecond)},
			key(2, 0): {Links: []int32{1, 2}, Lat: int64(10 * time.Microsecond)},
			key(2, 1): {Links: []int32{1, 2}, Lat: int64(10 * time.Microsecond)},
			key(9, 0): {Links: []int32{0, 1, 2}, Lat: int64(22 * time.Microsecond)},
		},
	}
	return j, cong
}

// Acceptance criterion: congestion-aware simulation is deterministic —
// bit-identical reports across repeated runs, pooled vs fresh engines
// and concurrent use (run under -race).
func TestCongestionDeterministicAcrossRunsAndPooling(t *testing.T) {
	j, cong := congestedFixture(t)
	opts := Options{Congestion: cong}
	base := mustRun(t, j, opts)
	if base.Makespan <= 0 {
		t.Fatal("fixture produced empty report")
	}
	for i := 0; i < 3; i++ {
		if r := mustRun(t, j, opts); !reportsEqual(base, r) {
			t.Fatalf("fresh run %d differs:\n%+v\nvs\n%+v", i, r, base)
		}
		r, err := RunPooled(context.Background(), j, opts)
		if err != nil {
			t.Fatalf("RunPooled: %v", err)
		}
		if !reportsEqual(base, r) {
			t.Fatalf("pooled run %d differs:\n%+v\nvs\n%+v", i, r, base)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := RunPooled(context.Background(), j, opts)
			if err != nil {
				errs <- err.Error()
				return
			}
			if !reportsEqual(base, r) {
				errs <- "concurrent pooled run diverged"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// Congestion slows the fixture down relative to verbatim replay, and
// the engine recovers cleanly for a following uncongested run.
func TestCongestionStretchesContendedFixture(t *testing.T) {
	j, cong := congestedFixture(t)
	congested, err := RunPooled(context.Background(), j, Options{Congestion: cong})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := RunPooled(context.Background(), j, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if congested.Makespan <= clean.Makespan {
		t.Fatalf("congested makespan %v not above uncongested %v", congested.Makespan, clean.Makespan)
	}
}
