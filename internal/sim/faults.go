package sim

// Engine-level fault injection: the compiled, worker-indexed form of
// a fault scenario (see the faults package for the rank-addressed,
// serializable Plan). An Injection perturbs one run in two ways:
//
//   - SlowWindow entries stretch timed device work (kernels, copies)
//     by a per-worker factor while the op's start time lies inside
//     the window — a straggler is a device that computes slowly, so
//     collective wire times are untouched and the straggler's delay
//     surfaces as collective wait on every other rank, exactly as it
//     does on a real cluster.
//
//   - FailStop freezes one worker at a simulated instant: its host
//     dispatches nothing at or past that time, its streams start no
//     new work, and collectives it never joins wait forever. Work in
//     flight at the instant of death completes (its results were
//     already on the wire or on the device), so the dead worker's
//     frontier is exact, not truncated mid-op. When the event heap
//     drains with workers still blocked, the run reports Halted
//     instead of diagnosing a trace deadlock: the wedge is the
//     scenario, and each survivor's HostEnd is the frontier where it
//     stalled on the dead rank.
//
// Injection checks are two nil tests on the dispatch path; a run
// without an Injection pays nothing. All decisions depend only on
// (worker, simulated time), so injected runs preserve the engine's
// determinism bar: bit-identical reports across reruns, pooling and
// any caller concurrency.

// SlowWindow is one straggler clause: per-worker multiplicative
// slowdown factors applied to timed device ops whose start time t
// satisfies From <= t and (Until == 0 or t < Until). A factor <= 0 or
// == 1 leaves that worker untouched; workers beyond the slice are
// untouched.
type SlowWindow struct {
	Factor []float64
	From   int64
	Until  int64
}

// FailStopAt kills one worker (by engine worker index) at a simulated
// time: fail-stop, not fail-slow — the worker vanishes.
type FailStopAt struct {
	Worker int
	At     int64
}

// Injection is a compiled fault scenario bound to one job's worker
// indexing. The zero value injects nothing; a nil *Injection in
// Options is the fault-free fast path.
type Injection struct {
	Slowdown []SlowWindow
	FailStop *FailStopAt
}

// stretch applies the matching slowdown windows to a device op of
// duration d starting at start on worker w.
func (inj *Injection) stretch(w int, start, d int64) int64 {
	for i := range inj.Slowdown {
		sw := &inj.Slowdown[i]
		if w >= len(sw.Factor) {
			continue
		}
		f := sw.Factor[w]
		if f <= 0 || f == 1 {
			continue
		}
		if start < sw.From || (sw.Until != 0 && start >= sw.Until) {
			continue
		}
		d = int64(float64(d) * f)
	}
	return d
}

// dead reports whether worker w is failed at time t.
func (inj *Injection) dead(w int, t int64) bool {
	return inj.FailStop != nil && inj.FailStop.Worker == w && t >= inj.FailStop.At
}
