package sim

import (
	"context"
	"reflect"
	"testing"
	"time"

	"maya/internal/trace"
)

// stragglerJob: two workers, each [10ms kernel, allreduce 1ms, 10ms
// kernel, devsync]. Fault-free makespan: 10 + 1 + 10 = 21ms.
func stragglerJob(t *testing.T) *trace.Job {
	t.Helper()
	mk := func(rank int) *trace.Worker {
		return worker(rank, 2,
			kernel(0, 10*time.Millisecond),
			coll(0, 0xc0, 0, 2, rank, time.Millisecond),
			kernel(0, 10*time.Millisecond),
			trace.Op{Kind: trace.KindDeviceSync},
		)
	}
	return job(t, mk(0), mk(1))
}

func TestStragglerSlowsCollectivePartners(t *testing.T) {
	j := stragglerJob(t)
	base := mustRun(t, j, Options{})
	if got, want := base.Makespan, 21*time.Millisecond; got != want {
		t.Fatalf("baseline makespan = %v, want %v", got, want)
	}

	// Worker 1 runs 2x slow: its first kernel takes 20ms, the
	// allreduce fires at 20ms, and both workers finish at 20+1+<post>
	// where the post kernel is also stretched on worker 1 (40ms) but
	// not on worker 0 (10ms): makespan = 20 + 1 + 20 = 41ms.
	inj := &Injection{Slowdown: []SlowWindow{{Factor: []float64{0, 2}}}}
	r := mustRun(t, j, Options{Faults: inj})
	if got, want := r.Makespan, 41*time.Millisecond; got != want {
		t.Fatalf("straggler makespan = %v, want %v", got, want)
	}
	// Worker 0 finishes its post-collective kernel at 21+10 = 31ms.
	if got, want := r.HostEnd[0], 31*time.Millisecond; got != want {
		t.Fatalf("worker 0 end = %v, want %v", got, want)
	}
	// The straggler's delay surfaces as exposed communication (stall
	// waiting at the allreduce) on the fast worker, not as compute.
	if got, want := r.ComputeBusy[0], 20*time.Millisecond; got != want {
		t.Fatalf("worker 0 compute = %v, want %v", got, want)
	}
}

func TestStragglerWindowBounds(t *testing.T) {
	j := stragglerJob(t)

	// Window covering only the first kernel (start t=0): the second
	// kernel starts at 21ms, outside [0, 5ms), so only the first
	// stretches. Makespan = 20 + 1 + 10 = 31ms.
	inj := &Injection{Slowdown: []SlowWindow{
		{Factor: []float64{0, 2}, From: 0, Until: int64(5 * time.Millisecond)},
	}}
	r := mustRun(t, j, Options{Faults: inj})
	if got, want := r.Makespan, 31*time.Millisecond; got != want {
		t.Fatalf("windowed makespan = %v, want %v", got, want)
	}

	// Window opening after both kernels started leaves the run clean.
	late := &Injection{Slowdown: []SlowWindow{
		{Factor: []float64{2, 2}, From: int64(time.Hour)},
	}}
	r2 := mustRun(t, j, Options{Faults: late})
	if got, want := r2.Makespan, 21*time.Millisecond; got != want {
		t.Fatalf("late-window makespan = %v, want %v", got, want)
	}

	// Factors <= 0 and == 1 are identity; short Factor slices leave
	// out-of-range workers untouched.
	id := &Injection{Slowdown: []SlowWindow{
		{Factor: []float64{1}},
		{Factor: []float64{0, -3}},
	}}
	r3 := mustRun(t, j, Options{Faults: id})
	if got, want := r3.Makespan, 21*time.Millisecond; got != want {
		t.Fatalf("identity makespan = %v, want %v", got, want)
	}

	// Overlapping windows compose multiplicatively: 1.5 * 2 = 3x on
	// the first kernel of worker 1 → 30 + 1 + 10 = 41ms.
	combo := &Injection{Slowdown: []SlowWindow{
		{Factor: []float64{0, 1.5}, Until: int64(5 * time.Millisecond)},
		{Factor: []float64{0, 2}, Until: int64(5 * time.Millisecond)},
	}}
	r4 := mustRun(t, j, Options{Faults: combo})
	if got, want := r4.Makespan, 41*time.Millisecond; got != want {
		t.Fatalf("stacked makespan = %v, want %v", got, want)
	}
}

func TestFailStopWedgesSurvivors(t *testing.T) {
	j := stragglerJob(t)

	// Worker 1 dies at 5ms, mid-first-kernel. The in-flight kernel
	// completes at 10ms (work already on the device), but worker 1
	// never joins the allreduce, so worker 0 wedges there forever.
	inj := &Injection{FailStop: &FailStopAt{Worker: 1, At: int64(5 * time.Millisecond)}}
	r := mustRun(t, j, Options{Faults: inj})
	if !r.Halted {
		t.Fatal("report not marked Halted")
	}
	// Worker 0's frontier: kernel done at 10ms, stalled at allreduce.
	if got, want := r.HostEnd[0], 10*time.Millisecond; got != want {
		t.Fatalf("survivor frontier = %v, want %v", got, want)
	}
	// Worker 1's frontier: its in-flight kernel completed.
	if got, want := r.HostEnd[1], 10*time.Millisecond; got != want {
		t.Fatalf("dead worker frontier = %v, want %v", got, want)
	}

	// Death at t=0 freezes worker 1 before anything runs.
	inj0 := &Injection{FailStop: &FailStopAt{Worker: 1, At: 0}}
	r0 := mustRun(t, j, Options{Faults: inj0})
	if !r0.Halted {
		t.Fatal("t=0 report not marked Halted")
	}
	if got := r0.HostEnd[1]; got != 0 {
		t.Fatalf("dead-at-0 worker frontier = %v, want 0", got)
	}

	// Death after the trace completes changes nothing: no wedge.
	injLate := &Injection{FailStop: &FailStopAt{Worker: 1, At: int64(time.Hour)}}
	rl := mustRun(t, j, Options{Faults: injLate})
	if rl.Halted {
		t.Fatal("post-trace death marked Halted")
	}
	if got, want := rl.Makespan, 21*time.Millisecond; got != want {
		t.Fatalf("post-trace-death makespan = %v, want %v", got, want)
	}
}

func TestFailStopAfterCollectiveJoinCompletes(t *testing.T) {
	// Worker 1 dies at 10.5ms — after joining the allreduce (at 10ms)
	// but before it completes (11ms). Its join was already on the
	// wire, so the collective finishes for both; worker 1 then starts
	// nothing new, and worker 0 runs to completion. No survivor
	// wedges: not Halted is wrong — Halted reflects undone hosts, and
	// worker 1's host froze. The run must still report Halted with
	// worker 0 fully done.
	j := stragglerJob(t)
	inj := &Injection{FailStop: &FailStopAt{Worker: 1, At: int64(10500 * time.Microsecond)}}
	r := mustRun(t, j, Options{Faults: inj})
	if !r.Halted {
		t.Fatal("report not marked Halted")
	}
	if got, want := r.HostEnd[0], 21*time.Millisecond; got != want {
		t.Fatalf("survivor end = %v, want %v", got, want)
	}
	// Worker 1's frontier is the collective completion it had joined.
	if got, want := r.HostEnd[1], 11*time.Millisecond; got != want {
		t.Fatalf("dead worker frontier = %v, want %v", got, want)
	}
}

func TestFaultsDeterminismPooledVsFresh(t *testing.T) {
	j := stragglerJob(t)
	inj := &Injection{
		Slowdown: []SlowWindow{{Factor: []float64{1.3, 2.7}}},
		FailStop: &FailStopAt{Worker: 0, At: int64(15 * time.Millisecond)},
	}
	opts := Options{Faults: inj}
	want := mustRun(t, j, opts)
	for range 3 {
		got := mustRun(t, j, opts)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("rerun diverged:\n got %+v\nwant %+v", got, want)
		}
		pooled, err := RunPooled(context.Background(), j, opts)
		if err != nil {
			t.Fatalf("RunPooled: %v", err)
		}
		if !reflect.DeepEqual(pooled, want) {
			t.Fatalf("pooled diverged:\n got %+v\nwant %+v", pooled, want)
		}
	}
}

func TestFaultsConcurrentRunsRace(t *testing.T) {
	j := stragglerJob(t)
	inj := &Injection{Slowdown: []SlowWindow{{Factor: []float64{0, 2}}}}
	opts := Options{Faults: inj}
	want := mustRun(t, j, opts)
	const workers = 8
	errs := make(chan error, workers)
	reps := make(chan *Report, workers)
	for range workers {
		go func() {
			r, err := RunPooled(context.Background(), j, opts)
			errs <- err
			reps <- r
		}()
	}
	for range workers {
		if err := <-errs; err != nil {
			t.Fatalf("concurrent RunPooled: %v", err)
		}
		if got := <-reps; !reflect.DeepEqual(got, want) {
			t.Fatalf("concurrent run diverged:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestNilInjectionMatchesFaultFree(t *testing.T) {
	j := stragglerJob(t)
	clean := mustRun(t, j, Options{})
	withNil := mustRun(t, j, Options{Faults: nil})
	if !reflect.DeepEqual(clean, withNil) {
		t.Fatalf("nil injection diverged from fault-free run")
	}
	// An empty (non-nil) injection disables chaining but must produce
	// the same timings.
	empty := mustRun(t, j, Options{Faults: &Injection{}})
	if !reflect.DeepEqual(clean, empty) {
		t.Fatalf("empty injection diverged:\n got %+v\nwant %+v", empty, clean)
	}
}
