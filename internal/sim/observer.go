package sim

import "maya/internal/trace"

// StallKind classifies why a stream stopped making progress.
type StallKind uint8

const (
	// StallEvent is a cudaStreamWaitEvent on a not-yet-recorded event.
	StallEvent StallKind = iota
	// StallCollective is a collective waiting for straggler ranks.
	StallCollective
)

// String implements fmt.Stringer.
func (k StallKind) String() string {
	switch k {
	case StallEvent:
		return "event-wait"
	case StallCollective:
		return "collective-wait"
	}
	return "stall"
}

// Observer receives engine callbacks at CUDA-API granularity. Attach
// one through Options.Observer; a nil observer adds no per-event cost
// to the loop (one predictable branch).
//
// The contract:
//
//   - Callbacks are synchronous, from the engine's single goroutine,
//     in simulation order. Observers must not call back into the
//     engine and must not retain *trace.Op pointers past the call —
//     pooled engines rebind to new jobs.
//   - Times are simulated nanoseconds since run start.
//   - OpStart reports the tentative end; SM contention in physical
//     mode can stretch a running op, so OpEnd's end is authoritative.
//   - StallEnd's end is when the blocker resolved: for StallEvent the
//     recorded event's completion, for StallCollective the moment the
//     last participant arrived (the collective's wire time follows as
//     CollectiveFired, not stall).
//   - CollectiveFired is delivered once per participant, with that
//     participant's worker/stream.
type Observer interface {
	// OpStart: a timed device op (kernel, memcpy, memset) began
	// executing on a stream.
	OpStart(w int, stream int64, op *trace.Op, start, end int64)
	// OpEnd: the op completed; end accounts for contention stretch.
	OpEnd(w int, stream int64, op *trace.Op, start, end int64)
	// CollectiveFired: a collective this worker participates in ran
	// over the wire during [start, end).
	CollectiveFired(w int, stream int64, op *trace.Op, key trace.CollKey, start, end int64)
	// StallBegin: the stream stopped, blocked on kind.
	StallBegin(w int, stream int64, kind StallKind, at int64)
	// StallEnd: the blocker resolved; the stall spanned [begin, end).
	StallEnd(w int, stream int64, kind StallKind, begin, end int64)
	// HostDelay: the worker's host thread spent [start, end) between
	// API calls (measured CPU time from the emulation).
	HostDelay(w int, start, end int64)
	// Mark: the workload hit an application annotation at time at.
	Mark(w int, label string, at int64)
}

// multiObserver fans callbacks out to several observers in order.
type multiObserver []Observer

func (m multiObserver) OpStart(w int, stream int64, op *trace.Op, start, end int64) {
	for _, o := range m {
		o.OpStart(w, stream, op, start, end)
	}
}

func (m multiObserver) OpEnd(w int, stream int64, op *trace.Op, start, end int64) {
	for _, o := range m {
		o.OpEnd(w, stream, op, start, end)
	}
}

func (m multiObserver) CollectiveFired(w int, stream int64, op *trace.Op, key trace.CollKey, start, end int64) {
	for _, o := range m {
		o.CollectiveFired(w, stream, op, key, start, end)
	}
}

func (m multiObserver) StallBegin(w int, stream int64, kind StallKind, at int64) {
	for _, o := range m {
		o.StallBegin(w, stream, kind, at)
	}
}

func (m multiObserver) StallEnd(w int, stream int64, kind StallKind, begin, end int64) {
	for _, o := range m {
		o.StallEnd(w, stream, kind, begin, end)
	}
}

func (m multiObserver) HostDelay(w int, start, end int64) {
	for _, o := range m {
		o.HostDelay(w, start, end)
	}
}

func (m multiObserver) Mark(w int, label string, at int64) {
	for _, o := range m {
		o.Mark(w, label, at)
	}
}

// Observers composes observers into one, skipping nils: it returns
// nil for an all-nil list (keeping the loop's nil fast path) and the
// observer itself when only one remains.
func Observers(obs ...Observer) Observer {
	var live multiObserver
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}
