package sim

import "time"

// RecoveryReport summarizes a fault scenario's cost against the
// fault-free baseline: how much work was lost, where the wall-clock
// time went (detection, restore, redo, checkpoint writes, re-shard),
// and the resulting goodput. Built by faults.Evaluate from perturbed
// engine runs; attached to core reports and serialized alongside
// them.
//
// JSON uses integer nanosecond fields as the authoritative values, so
// a report round-trips bit-exactly — the determinism bar extends to
// the serialized form.
type RecoveryReport struct {
	// World is the initial world size (workers at iteration 0).
	World int `json:"world"`
	// Iterations is the number of training iterations accounted for.
	Iterations int `json:"iterations"`
	// CheckpointEvery is the checkpoint interval in iterations; 0
	// means no checkpointing (a failure loses everything since
	// setup).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// Checkpoints is the number of checkpoint writes that committed.
	Checkpoints int `json:"checkpoints,omitempty"`

	// CheckpointOverhead is total wall time spent writing checkpoints.
	CheckpointOverhead time.Duration `json:"checkpoint_overhead_ns,omitempty"`
	// CleanTime is the fault-free baseline wall time for the same
	// iterations (no stragglers, no failures, no checkpoint cost).
	CleanTime time.Duration `json:"clean_time_ns"`
	// PerturbedTime is the wall time with stragglers applied but no
	// failures, resizes or checkpoint cost — the slowdown floor.
	PerturbedTime time.Duration `json:"perturbed_time_ns"`
	// TotalTime is the end-to-end wall time of the full scenario.
	TotalTime time.Duration `json:"total_time_ns"`
	// LostWork is progress discarded by rewinds: for each failure,
	// the wall time since its last committed checkpoint.
	LostWork time.Duration `json:"lost_work_ns,omitempty"`
	// Detection is total time from each death until survivors give up.
	Detection time.Duration `json:"detection_ns,omitempty"`
	// Restore is total time restoring checkpoints after failures.
	Restore time.Duration `json:"restore_ns,omitempty"`
	// Redo is total time re-executing lost iterations; equals
	// LostWork when redo runs at the same rate work was first done.
	Redo time.Duration `json:"redo_ns,omitempty"`
	// Reshard is total re-shard cost paid at elastic resizes.
	Reshard time.Duration `json:"reshard_ns,omitempty"`
	// SurvivorIdle is GPU time wasted across surviving workers while
	// wedged on a dead rank's collectives (from death to detection),
	// summed over failures.
	SurvivorIdle time.Duration `json:"survivor_idle_ns,omitempty"`

	// Goodput is CleanTime / TotalTime: the fraction of the wall
	// clock that produced useful progress at fault-free speed. 1.0
	// for a fault-free run; lower under stragglers, failures and
	// resize overhead.
	Goodput float64 `json:"goodput"`

	// Failures records each fail-stop recovery in occurrence order.
	Failures []FailureRecovery `json:"failures,omitempty"`
	// Resizes records each elastic resize in occurrence order.
	Resizes []ResizeRecovery `json:"resizes,omitempty"`
}

// FailureRecovery is one fail-stop event and its recovery accounting.
type FailureRecovery struct {
	// Rank is the world rank that died.
	Rank int `json:"rank"`
	// At is the scenario wall-clock time of death.
	At time.Duration `json:"at_ns"`
	// TraceAt is the simulated trace time the death maps to — the
	// instant injected into the engine run that measured the wedge.
	TraceAt time.Duration `json:"trace_at_ns"`
	// Detection is the stall-to-timeout window survivors waited.
	Detection time.Duration `json:"detection_ns"`
	// Restore is the checkpoint restore time for this failure.
	Restore time.Duration `json:"restore_ns"`
	// LostWork is wall-clock progress discarded by this rewind.
	LostWork time.Duration `json:"lost_work_ns"`
	// SurvivorIdle is wasted survivor GPU time for this failure.
	SurvivorIdle time.Duration `json:"survivor_idle_ns"`
	// WedgedWorkers is how many surviving workers stalled on the
	// dead rank's collectives before detection fired.
	WedgedWorkers int `json:"wedged_workers"`
}

// ResizeRecovery is one elastic resize and its cost.
type ResizeRecovery struct {
	// AtIteration is the iteration boundary the resize took effect.
	AtIteration int `json:"at_iteration"`
	// OldWorld and NewWorld are the world sizes before and after.
	OldWorld int `json:"old_world"`
	NewWorld int `json:"new_world"`
	// Reshard is the one-time state redistribution cost paid.
	Reshard time.Duration `json:"reshard_ns"`
}
