package sim

import (
	"sort"
	"time"

	"maya/internal/trace"
)

// MarkAt is an application annotation with its simulated host time.
type MarkAt struct {
	Label string
	At    time.Duration
}

// Report is the output of a simulation run.
type Report struct {
	// Truncated marks a run stopped at Options.TimeLimit before the
	// trace drained: the report describes the event prefix up to the
	// horizon (every field is a lower bound on the full run), and the
	// true makespan is known to exceed the limit.
	Truncated bool
	// Halted marks a fail-stop run that wedged: the injected worker
	// froze and survivors stalled on its collectives until the event
	// heap drained. HostEnd holds each worker's stall frontier.
	Halted bool
	// Makespan is the completion time of the slowest worker.
	Makespan time.Duration
	// HostEnd is each worker's host completion time.
	HostEnd []time.Duration
	// Marks holds each worker's application annotations in order.
	Marks [][]MarkAt
	// ComputeBusy is, per worker, the union length of compute/memory
	// op intervals.
	ComputeBusy []time.Duration
	// CommBusy is, per worker, the union length of collective
	// intervals.
	CommBusy []time.Duration
	// ExposedComm is, per worker, collective time not hidden behind
	// compute — the cost pipeline overlap tries to remove.
	ExposedComm []time.Duration
}

// buildReport snapshots the run into a Report. Every slice is a deep
// copy: a report never aliases engine storage, so resetting or
// pooling the engine cannot mutate a caller's report.
func (e *Engine) buildReport() *Report {
	n := len(e.hosts)
	r := &Report{
		HostEnd:     make([]time.Duration, n),
		Marks:       make([][]MarkAt, n),
		ComputeBusy: make([]time.Duration, n),
		CommBusy:    make([]time.Duration, n),
		ExposedComm: make([]time.Duration, n),
	}
	for i := range e.hosts {
		h := &e.hosts[i]
		if len(e.marks[i]) > 0 {
			r.Marks[i] = append([]MarkAt(nil), e.marks[i]...)
		}
		end := h.t
		for _, st := range e.byWorker[i] {
			end = max(end, st.freeAt)
		}
		r.HostEnd[i] = time.Duration(end)
		if r.HostEnd[i] > r.Makespan {
			r.Makespan = r.HostEnd[i]
		}
		comp, comm, exposed := busyStats(e.intervals[i], &e.busy)
		r.ComputeBusy[i] = comp
		r.CommBusy[i] = comm
		r.ExposedComm[i] = exposed
	}
	return r
}

// busyScratch is busyStats's reusable split buffer; a zero value is
// ready to use, and a non-nil scratch makes repeated calls
// allocation-free at steady state.
type busyScratch struct {
	comps, comms []interval
}

// busyStats computes union lengths of compute and comm intervals and
// the exposed (non-overlapped) communication time. The scratch may be
// nil; its contents are invalidated by the next call.
func busyStats(ivs []interval, s *busyScratch) (compute, comm, exposed time.Duration) {
	if s == nil {
		s = &busyScratch{}
	}
	comps, comms := s.comps[:0], s.comms[:0]
	for _, iv := range ivs {
		if iv.end <= iv.start {
			continue
		}
		if iv.comm {
			comms = append(comms, iv)
		} else {
			comps = append(comps, iv)
		}
	}
	s.comps, s.comms = comps, comms
	compU := unionize(comps)
	commU := unionize(comms)
	compute = time.Duration(unionLen(compU))
	comm = time.Duration(unionLen(commU))
	exposed = time.Duration(unionLen(commU) - overlapLen(commU, compU))
	return compute, comm, exposed
}

// unionize merges overlapping intervals into a sorted disjoint set.
func unionize(ivs []interval) []interval {
	if len(ivs) == 0 {
		return nil
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.start <= last.end {
			if iv.end > last.end {
				last.end = iv.end
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

func unionLen(ivs []interval) int64 {
	var n int64
	for _, iv := range ivs {
		n += iv.end - iv.start
	}
	return n
}

// overlapLen returns the total length of the intersection of two
// disjoint sorted interval sets.
func overlapLen(a, b []interval) int64 {
	var n int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := max(a[i].start, b[j].start)
		hi := min(a[i].end, b[j].end)
		if hi > lo {
			n += hi - lo
		}
		if a[i].end < b[j].end {
			i++
		} else {
			j++
		}
	}
	return n
}

// complementWithin returns [0, end) minus the disjoint sorted set u —
// the idle time of a worker whose busy union is u.
func complementWithin(u []interval, end int64) []interval {
	var out []interval
	var cursor int64
	for _, iv := range u {
		if iv.start >= end {
			break
		}
		if iv.start > cursor {
			out = append(out, interval{start: cursor, end: iv.start})
		}
		if iv.end > cursor {
			cursor = iv.end
		}
	}
	if cursor < end {
		out = append(out, interval{start: cursor, end: end})
	}
	return out
}

// subtractSets returns a \ b for disjoint sorted interval sets.
func subtractSets(a, b []interval) []interval {
	var out []interval
	j := 0
	for _, iv := range a {
		lo := iv.start
		for j < len(b) && b[j].end <= lo {
			j++
		}
		k := j
		for k < len(b) && b[k].start < iv.end {
			if b[k].start > lo {
				out = append(out, interval{start: lo, end: b[k].start})
			}
			if b[k].end > lo {
				lo = b[k].end
			}
			k++
		}
		if lo < iv.end {
			out = append(out, interval{start: lo, end: iv.end})
		}
	}
	return out
}

// IterEnds returns, for each iteration boundary index, the latest
// iter_end mark across workers — the time the slowest worker finished
// that iteration.
func (r *Report) IterEnds() []time.Duration {
	var ends []time.Duration
	for _, marks := range r.Marks {
		idx := 0
		for _, m := range marks {
			if m.Label != trace.MarkIterEnd {
				continue
			}
			if idx == len(ends) {
				ends = append(ends, m.At)
			} else if m.At > ends[idx] {
				ends[idx] = m.At
			}
			idx++
		}
	}
	return ends
}

// setupEnd returns the latest setup_end mark across workers, or zero.
func (r *Report) setupEnd() time.Duration {
	var t time.Duration
	for _, marks := range r.Marks {
		for _, m := range marks {
			if m.Label == trace.MarkSetupEnd && m.At > t {
				t = m.At
			}
		}
	}
	return t
}

// IterTime returns the steady-state per-iteration time: the mean gap
// between consecutive iteration boundaries when the trace holds
// several iterations (excluding the first, which carries warmup), or
// the single iteration's span otherwise.
func (r *Report) IterTime() time.Duration {
	ends := r.IterEnds()
	switch len(ends) {
	case 0:
		return r.Makespan
	case 1:
		return ends[0] - r.setupEnd()
	default:
		return (ends[len(ends)-1] - ends[0]) / time.Duration(len(ends)-1)
	}
}
