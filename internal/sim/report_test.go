package sim

import (
	"testing"
	"time"
)

func TestUnionize(t *testing.T) {
	ivs := []interval{{start: 0, end: 10}, {start: 5, end: 15}, {start: 20, end: 25}}
	u := unionize(ivs)
	if len(u) != 2 || u[0].start != 0 || u[0].end != 15 || u[1].start != 20 {
		t.Fatalf("union = %v", u)
	}
	if unionLen(u) != 20 {
		t.Fatalf("union length = %d", unionLen(u))
	}
}

func TestOverlapLen(t *testing.T) {
	a := []interval{{start: 0, end: 10}, {start: 20, end: 30}}
	b := []interval{{start: 5, end: 25}}
	if got := overlapLen(a, b); got != 10 {
		t.Fatalf("overlap = %d, want 10 (5 in each segment)", got)
	}
	if overlapLen(a, nil) != 0 {
		t.Fatal("overlap with empty should be 0")
	}
}

func TestBusyStatsExposedComm(t *testing.T) {
	ivs := []interval{
		{start: 0, end: 100},              // compute
		{start: 50, end: 150, comm: true}, // comm half hidden
	}
	comp, comm, exposed := busyStats(ivs)
	if comp != 100 || comm != 100 {
		t.Fatalf("comp/comm = %v/%v", comp, comm)
	}
	if exposed != 50 {
		t.Fatalf("exposed = %v, want 50", exposed)
	}
}

func TestIterTimeSingleIteration(t *testing.T) {
	r := &Report{
		Marks: [][]MarkAt{{
			{Label: "setup_end", At: 10 * time.Millisecond},
			{Label: "iter_end", At: 40 * time.Millisecond},
		}},
	}
	if got := r.IterTime(); got != 30*time.Millisecond {
		t.Fatalf("single-iteration time = %v", got)
	}
}

func TestIterEndsTakeSlowestWorker(t *testing.T) {
	r := &Report{
		Marks: [][]MarkAt{
			{{Label: "iter_end", At: 10 * time.Millisecond}, {Label: "iter_end", At: 30 * time.Millisecond}},
			{{Label: "iter_end", At: 12 * time.Millisecond}, {Label: "iter_end", At: 28 * time.Millisecond}},
		},
	}
	ends := r.IterEnds()
	if len(ends) != 2 || ends[0] != 12*time.Millisecond || ends[1] != 30*time.Millisecond {
		t.Fatalf("iter ends = %v", ends)
	}
	// Steady-state time uses the gap between boundaries.
	if got := r.IterTime(); got != 18*time.Millisecond {
		t.Fatalf("steady iter = %v", got)
	}
}
