package sim

import (
	"testing"
	"time"
)

func TestUnionize(t *testing.T) {
	ivs := []interval{{start: 0, end: 10}, {start: 5, end: 15}, {start: 20, end: 25}}
	u := unionize(ivs)
	if len(u) != 2 || u[0].start != 0 || u[0].end != 15 || u[1].start != 20 {
		t.Fatalf("union = %v", u)
	}
	if unionLen(u) != 20 {
		t.Fatalf("union length = %d", unionLen(u))
	}
}

func TestOverlapLen(t *testing.T) {
	a := []interval{{start: 0, end: 10}, {start: 20, end: 30}}
	b := []interval{{start: 5, end: 25}}
	if got := overlapLen(a, b); got != 10 {
		t.Fatalf("overlap = %d, want 10 (5 in each segment)", got)
	}
	if overlapLen(a, nil) != 0 {
		t.Fatal("overlap with empty should be 0")
	}
}

func TestBusyStatsExposedComm(t *testing.T) {
	ivs := []interval{
		{start: 0, end: 100},              // compute
		{start: 50, end: 150, comm: true}, // comm half hidden
	}
	comp, comm, exposed := busyStats(ivs, nil)
	if comp != 100 || comm != 100 {
		t.Fatalf("comp/comm = %v/%v", comp, comm)
	}
	if exposed != 50 {
		t.Fatalf("exposed = %v, want 50", exposed)
	}
}

func TestIterTimeSingleIteration(t *testing.T) {
	r := &Report{
		Marks: [][]MarkAt{{
			{Label: "setup_end", At: 10 * time.Millisecond},
			{Label: "iter_end", At: 40 * time.Millisecond},
		}},
	}
	if got := r.IterTime(); got != 30*time.Millisecond {
		t.Fatalf("single-iteration time = %v", got)
	}
}

func TestIterEndsTakeSlowestWorker(t *testing.T) {
	r := &Report{
		Marks: [][]MarkAt{
			{{Label: "iter_end", At: 10 * time.Millisecond}, {Label: "iter_end", At: 30 * time.Millisecond}},
			{{Label: "iter_end", At: 12 * time.Millisecond}, {Label: "iter_end", At: 28 * time.Millisecond}},
		},
	}
	ends := r.IterEnds()
	if len(ends) != 2 || ends[0] != 12*time.Millisecond || ends[1] != 30*time.Millisecond {
		t.Fatalf("iter ends = %v", ends)
	}
	// Steady-state time uses the gap between boundaries.
	if got := r.IterTime(); got != 18*time.Millisecond {
		t.Fatalf("steady iter = %v", got)
	}
}

func TestUnionizeEdgeCases(t *testing.T) {
	if got := unionize(nil); got != nil {
		t.Fatalf("unionize(nil) = %v, want nil", got)
	}
	// Fully nested overlap collapses to the outer interval.
	nested := []interval{{start: 0, end: 100}, {start: 10, end: 20}, {start: 30, end: 90}}
	u := unionize(nested)
	if len(u) != 1 || u[0].start != 0 || u[0].end != 100 {
		t.Fatalf("nested union = %v, want [{0 100}]", u)
	}
	// Touching intervals merge (closed at the seam).
	touching := []interval{{start: 0, end: 10}, {start: 10, end: 20}}
	if u := unionize(touching); len(u) != 1 || u[0].end != 20 {
		t.Fatalf("touching union = %v, want one [0,20)", u)
	}
	// Identical intervals count once.
	same := []interval{{start: 5, end: 9}, {start: 5, end: 9}}
	if got := unionLen(unionize(same)); got != 4 {
		t.Fatalf("duplicate union length = %d, want 4", got)
	}
}

func TestBusyStatsZeroLengthIntervals(t *testing.T) {
	// Zero- and negative-length intervals (instantaneous ops, clamped
	// durations) must not contribute to busy time or crash unionize.
	ivs := []interval{
		{start: 5, end: 5},
		{start: 9, end: 7},
		{start: 0, end: 10},
		{start: 3, end: 3, comm: true},
	}
	comp, comm, exposed := busyStats(ivs, nil)
	if comp != 10 || comm != 0 || exposed != 0 {
		t.Fatalf("comp/comm/exposed = %v/%v/%v, want 10/0/0", comp, comm, exposed)
	}
}

func TestBusyStatsCommOnlyWorker(t *testing.T) {
	// A worker that only communicates (a relay rank): all comm time is
	// exposed, compute is zero.
	ivs := []interval{
		{start: 0, end: 40, comm: true},
		{start: 10, end: 60, comm: true},
	}
	comp, comm, exposed := busyStats(ivs, nil)
	if comp != 0 {
		t.Fatalf("compute = %v, want 0", comp)
	}
	if comm != 60 || exposed != 60 {
		t.Fatalf("comm/exposed = %v/%v, want 60/60 (nothing hides it)", comm, exposed)
	}
}

func TestBusyStatsFullyNestedCommInsideCompute(t *testing.T) {
	ivs := []interval{
		{start: 0, end: 100},
		{start: 20, end: 30, comm: true}, // fully hidden
		{start: 40, end: 50, comm: true}, // fully hidden
	}
	comp, comm, exposed := busyStats(ivs, nil)
	if comp != 100 || comm != 20 || exposed != 0 {
		t.Fatalf("comp/comm/exposed = %v/%v/%v, want 100/20/0", comp, comm, exposed)
	}
}

func TestComplementWithin(t *testing.T) {
	u := []interval{{start: 10, end: 20}, {start: 30, end: 40}}
	got := complementWithin(u, 50)
	want := []interval{{start: 0, end: 10}, {start: 20, end: 30}, {start: 40, end: 50}}
	if len(got) != len(want) {
		t.Fatalf("complement = %v, want %v", got, want)
	}
	for i := range want {
		if got[i].start != want[i].start || got[i].end != want[i].end {
			t.Fatalf("complement = %v, want %v", got, want)
		}
	}
	if got := complementWithin(nil, 25); len(got) != 1 || got[0].start != 0 || got[0].end != 25 {
		t.Fatalf("complement of empty = %v, want [{0 25}]", got)
	}
	// Busy set covering the whole span leaves nothing.
	if got := complementWithin([]interval{{start: 0, end: 25}}, 25); len(got) != 0 {
		t.Fatalf("complement of full cover = %v, want empty", got)
	}
	// Busy beyond the span is clipped out entirely.
	if got := complementWithin([]interval{{start: 30, end: 40}}, 25); len(got) != 1 || got[0].end != 25 {
		t.Fatalf("complement with out-of-span busy = %v", got)
	}
}

func TestSubtractSets(t *testing.T) {
	a := []interval{{start: 0, end: 10}, {start: 20, end: 30}}
	b := []interval{{start: 5, end: 25}}
	got := subtractSets(a, b)
	want := []interval{{start: 0, end: 5}, {start: 25, end: 30}}
	if len(got) != len(want) {
		t.Fatalf("subtract = %v, want %v", got, want)
	}
	for i := range want {
		if got[i].start != want[i].start || got[i].end != want[i].end {
			t.Fatalf("subtract = %v, want %v", got, want)
		}
	}
	// b splitting a into three pieces.
	got = subtractSets([]interval{{start: 0, end: 30}}, []interval{{start: 5, end: 10}, {start: 15, end: 20}})
	if len(got) != 3 || got[1].start != 10 || got[1].end != 15 {
		t.Fatalf("split subtract = %v", got)
	}
	if got := subtractSets(a, nil); len(got) != 2 {
		t.Fatalf("subtract nothing = %v, want a itself", got)
	}
	if got := subtractSets(nil, b); len(got) != 0 {
		t.Fatalf("subtract from empty = %v, want empty", got)
	}
}
