// Package sim is Maya's end-to-end discrete-event simulator. It
// replays an annotated job trace — every device op carries a
// predicted duration — against a model of hosts, devices and streams,
// reproducing the execution semantics of the CUDA runtime:
//
//   - each worker has a host dispatch queue that issues API calls in
//     program order, pausing for measured host delays and blocking on
//     synchronization calls;
//   - each device executes streams concurrently, each stream FIFO;
//   - cudaEventRecord/cudaStreamWaitEvent pairs synchronize streams
//     through a versioned event wait map (Algorithm 3 of the paper);
//   - NCCL collectives synchronize workers through a network
//     collective wait map: every participant blocks its stream until
//     the last one arrives, then all proceed in lockstep for the
//     predicted on-the-wire duration.
//
// Pipeline bubbles, compute/communication overlap and host-bound
// stretches all emerge from these rules rather than from explicit
// modeling, which is the point of simulating at CUDA-API granularity.
//
// A "physical" mode adds effects Maya's predictor deliberately does
// not model — per-kernel launch jitter and SM contention between
// overlapping compute and communication. The synthetic-silicon ground
// truth runs in that mode, so predicted-vs-actual experiments face
// the same reality gap the paper's do (§8, SM Contention).
//
// # The engine
//
// The event loop is a typed one: every scheduled occurrence is a
// plain simEvent value (kind + stream/host payload) on a slice-backed
// binary heap, dispatched by a switch. Nothing in the hot loop
// allocates — no closures, no interface boxing — which matters
// because sim.Run is the inner loop of capture-reuse sweeps and
// recipe searches that replay the same trace thousands of times.
//
// An Engine is reusable: Reset rebinds it to a new job while keeping
// every map and slice it has ever grown, and RunPooled draws engines
// from a sync.Pool so back-to-back simulations reuse storage instead
// of reallocating it. Reports never alias engine storage — they are
// safe to keep after the engine is reset or pooled.
//
// An Observer (see observer.go) can be attached through Options to
// watch the run at CUDA-API granularity; a nil observer costs one
// predictable branch per event.
package sim

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"maya/internal/prand"
	"maya/internal/trace"
)

// Options configures a simulation run.
type Options struct {
	// Participants overrides, per collective call, how many workers
	// the wait map expects. The collator provides this when
	// deduplicated jobs simulate only unique workers. Nil means every
	// call waits for all traced participants.
	Participants map[trace.CollKey]int

	// Observer, when non-nil, receives engine callbacks at CUDA-API
	// granularity (op start/end, collective fires, stream stalls).
	// Observers watch; they must not retain the *trace.Op pointers
	// beyond the callback. A nil observer adds no per-event cost.
	Observer Observer

	// Annotations, when non-nil, is the duration overlay the engine
	// reads device-op and collective durations through instead of the
	// ops' own Dur fields. Annotation passes write into the overlay so
	// the job itself stays immutable and shareable across concurrent
	// runs. Host delays always come from the trace (annotation never
	// touches them). The overlay must stay bound to this job until Run
	// returns.
	Annotations *trace.Annotations

	// Congestion, when non-nil, resolves collective durations against
	// a shared-link occupancy model at fire time: concurrently-active
	// collectives sharing a link domain split its bandwidth. Off by
	// default (collectives replay their annotated durations verbatim).
	// Deterministic: results are bit-identical across runs, pooling
	// and worker counts. Not meaningful combined with CommContention
	// (physical mode models contention its own way).
	Congestion *CongestionModel

	// TimeLimit is a simulated-clock horizon: the engine drains events
	// in deterministic (time, sequence) order and stops the moment the
	// next event lies strictly beyond the limit, returning a Report
	// with Truncated set instead of finishing the trace. Zero means no
	// horizon. Because the event order is a strict total order
	// independent of heap layout, pooling and goroutine schedule, a
	// truncated run is exactly reproducible: the same job, annotations
	// and limit always process the same event prefix. Recipe searches
	// use this to abandon trials that are provably slower than an
	// incumbent without simulating them to completion.
	TimeLimit time.Duration

	// Faults, when non-nil, perturbs the run with the compiled fault
	// scenario (stragglers, fail-stop): see faults.go. Nil injects
	// nothing and costs nothing on the hot path. Injections are pure
	// functions of (worker, simulated time), so perturbed runs keep
	// the engine's bit-identical determinism across reruns, pooling
	// and caller concurrency.
	Faults *Injection

	// Physical-mode knobs (ground truth only; zero for prediction).

	// JitterFrac is the relative sigma of deterministic log-normal
	// noise applied to device op durations.
	JitterFrac float64
	// CommContention slows compute kernels that start while a
	// collective is in flight on the same device, modeling SM
	// contention between NCCL and compute kernels.
	CommContention float64
	// Seed drives the deterministic jitter.
	Seed uint64
}

// Run simulates the job and returns its report. It fails if the
// trace deadlocks (mismatched collectives or waits), which indicates
// an invalid workload rather than a simulator bug. The event loop
// observes ctx: a cancelled simulation stops promptly and returns
// ctx.Err().
//
// Run builds a fresh Engine per call. Callers that simulate in a
// loop should prefer RunPooled, which reuses engine storage.
func Run(ctx context.Context, job *trace.Job, opts Options) (*Report, error) {
	e := NewEngine()
	e.Reset(job, opts)
	return e.Run(ctx)
}

var enginePool = sync.Pool{New: func() any { return NewEngine() }}

// RunPooled is Run backed by a process-wide engine pool: stream,
// host, heap and interval storage is reused across calls, so
// back-to-back simulations (batch sweeps, search trials,
// annotate-many over one capture) run allocation-free at steady
// state. Results are identical to Run's. Safe for concurrent use —
// each call owns its engine for the duration.
func RunPooled(ctx context.Context, job *trace.Job, opts Options) (*Report, error) {
	e := enginePool.Get().(*Engine)
	e.Reset(job, opts)
	rep, err := e.Run(ctx)
	e.scrub() // drop references to caller data before pooling
	enginePool.Put(e)
	return rep, err
}

type eventKey struct {
	w   int
	ev  int64
	ver int
}

type pendingOp struct {
	op  *trace.Op
	enq int64 // host time at enqueue
}

type streamState struct {
	w     int
	id    int64
	queue []pendingOp
	head  int

	freeAt     int64
	running    bool
	stalledEv  bool
	stalledCol bool
	waitKey    eventKey // the event a stalledEv stream waits for
	stallStart int64

	// nextWait chains streams waiting on the same event (the wait
	// map's FIFO release order) without allocating waiter slices.
	nextWait *streamState

	// Running-op bookkeeping for SM-contention stretching and the
	// OpEnd observer callback.
	curOp     *trace.Op
	curStart  int64
	curEnd    int64
	curKernel bool
	curIval   int
	epoch     int64
}

func (st *streamState) drained() bool {
	return !st.running && !st.stalledEv && !st.stalledCol && st.head == len(st.queue)
}

type hostWait uint8

const (
	waitNone hostWait = iota
	waitEvent
	waitStream
	waitDevice
)

type hostState struct {
	w    int
	ops  []trace.Op
	pos  int
	t    int64
	done bool

	wait       hostWait
	waitStream *streamState
	scheduled  bool
}

type collGroup struct {
	arrived  []*streamState
	arriveAt []int64
	dur      int64
	expected int
}

type interval struct {
	start, end int64
	comm       bool
}

// evKind discriminates scheduled events. The event loop is a switch
// over these instead of a heap of closures: a simEvent is a plain
// value, so scheduling allocates nothing.
type evKind uint8

const (
	evHostRun    evKind = iota // (re-)enter a worker's host dispatch loop
	evOpEnd                    // a timed device op completed (arg = epoch)
	evStreamKick               // resume an event-released stream
	evCollDone                 // a collective finished (arg = its start time)
	evFlowStart                // a congestion flow's deferred start (arg = epoch)
	evFlowDone                 // a congestion flow may have finished (arg = epoch)
)

// simEvent is one scheduled occurrence: a kind, its due time, a
// tie-breaking sequence number, and the payload the kind needs.
type simEvent struct {
	t    int64
	seq  int64
	arg  int64
	st   *streamState
	host *hostState
	flow *congFlow
	kind evKind
}

func eventBefore(a, b simEvent) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

type streamKey struct {
	w int
	s int64
}

// waitList is the FIFO of streams parked on one event key, chained
// intrusively through streamState.nextWait.
type waitList struct {
	head, tail *streamState
}

// Engine is a reusable simulator instance. The zero value is not
// ready; construct with NewEngine. The lifecycle is
//
//	e := NewEngine()
//	e.Reset(job, opts)
//	report, err := e.Run(ctx)
//	e.Reset(nextJob, opts) // storage from the first run is reused
//	...
//
// An Engine is single-goroutine: Reset and Run must not be called
// concurrently. Reports returned by Run never alias engine storage,
// so they stay valid after the engine is reset, pooled or dropped.
type Engine struct {
	job  *trace.Job
	opts Options
	obs  Observer
	ann  *trace.Annotations

	pq    []simEvent
	evSeq int64
	now   int64

	hosts []hostState
	// streams indexes every (worker, stream-handle) pair touched;
	// byWorker lists them in creation order for device-wide
	// synchronization, drain checks and deterministic iteration.
	streams     map[streamKey]*streamState
	byWorker    [][]*streamState
	freeStreams []*streamState

	events        map[eventKey]int64
	evWaitStreams map[eventKey]waitList
	evWaitHosts   map[eventKey]*hostState

	colls        map[trace.CollKey]*collGroup
	freeColls    []*collGroup
	participants map[trace.CollKey]int
	// Congestion state: active flows in start order, recycled flow
	// records, and per-link-domain occupancy counts.
	cong      *CongestionModel
	flows     []*congFlow
	freeFlows []*congFlow
	linkUse   []int32
	// activeColls tracks, per worker, the fired-but-unfinished
	// collective intervals, for SM-contention overlap queries.
	activeColls [][]interval

	intervals [][]interval
	marks     [][]MarkAt
	// busy is buildReport's reusable interval-union scratch.
	busy busyScratch

	rng jitterSource
	ran bool
	// inj is the bound fault injection; nil on the fault-free path.
	inj *Injection
	// chain enables batched dispatch of consecutive timed ops: one
	// end event per run of kernels/copies instead of one per op. Set
	// by Reset when nothing can observe or perturb individual ops
	// (no Observer, no SM contention, no congestion model).
	chain bool
}

type jitterSource struct {
	frac float64
	seed uint64
}

func (j jitterSource) factor(a, b int64) float64 {
	if j.frac == 0 {
		return 1
	}
	h := prand.HashInts(j.seed, a, b)
	z := prand.New(h).NormFloat64()
	f := 1 + j.frac*z
	if f < 0.2 {
		f = 0.2
	}
	return f
}

// NewEngine returns an empty engine ready for Reset.
func NewEngine() *Engine {
	return &Engine{
		streams:       make(map[streamKey]*streamState),
		events:        make(map[eventKey]int64),
		evWaitStreams: make(map[eventKey]waitList),
		evWaitHosts:   make(map[eventKey]*hostState),
		colls:         make(map[trace.CollKey]*collGroup),
	}
}

// Scrub recycles per-run state and drops every reference to caller
// data (the job, its ops, the observer), so a pooled or idle engine
// never pins a trace in memory. It leaves grown storage — maps keep
// their buckets, slices their capacity — for the next Reset. Call it
// before parking an engine that outlives the job it last simulated.
func (e *Engine) Scrub() { e.scrub() }

func (e *Engine) scrub() {
	e.job = nil
	e.obs = nil
	e.ann = nil
	e.opts = Options{}
	e.participants = nil
	clear(e.pq)
	e.pq = e.pq[:0]
	e.evSeq, e.now = 0, 0
	for i := range e.hosts {
		e.hosts[i] = hostState{}
	}
	for w := range e.byWorker {
		for _, st := range e.byWorker[w] {
			q := st.queue
			clear(q)
			*st = streamState{queue: q[:0]}
			e.freeStreams = append(e.freeStreams, st)
		}
		e.byWorker[w] = e.byWorker[w][:0]
		e.activeColls[w] = e.activeColls[w][:0]
		e.intervals[w] = e.intervals[w][:0]
		clear(e.marks[w])
		e.marks[w] = e.marks[w][:0]
	}
	clear(e.streams)
	clear(e.events)
	clear(e.evWaitStreams)
	clear(e.evWaitHosts)
	for _, g := range e.colls {
		e.recycleColl(g)
	}
	clear(e.colls)
	e.cong = nil
	e.inj = nil
	for _, f := range e.flows {
		if f.group != nil {
			e.recycleColl(f.group)
		}
		f.group, f.links = nil, nil
		f.active = false
		e.freeFlows = append(e.freeFlows, f)
	}
	clear(e.flows)
	e.flows = e.flows[:0]
}

// Reset rebinds the engine to a job, reusing all storage grown by
// previous runs. The job must stay immutable for the duration of the
// following Run; the engine only reads it.
func (e *Engine) Reset(job *trace.Job, opts Options) {
	e.scrub()
	e.job = job
	e.opts = opts
	e.obs = opts.Observer
	e.ann = opts.Annotations
	e.ran = false
	e.rng = jitterSource{frac: opts.JitterFrac, seed: opts.Seed}

	n := len(job.Workers)
	if cap(e.hosts) < n {
		e.hosts = make([]hostState, n)
	}
	e.hosts = e.hosts[:n]
	for i, w := range job.Workers {
		e.hosts[i] = hostState{w: i, ops: w.Ops}
	}
	e.byWorker = resizeGrid(e.byWorker, n)
	e.activeColls = resizeGrid(e.activeColls, n)
	e.intervals = resizeGrid(e.intervals, n)
	e.marks = resizeGrid(e.marks, n)

	e.participants = opts.Participants
	if e.participants == nil {
		e.participants = trace.Participation(job)
	}

	e.chain = opts.Observer == nil && opts.CommContention == 0 && opts.Congestion == nil &&
		opts.Faults == nil
	e.inj = opts.Faults

	e.cong = opts.Congestion
	if e.cong != nil {
		if cap(e.linkUse) < len(e.cong.Widths) {
			e.linkUse = make([]int32, len(e.cong.Widths))
		}
		e.linkUse = e.linkUse[:len(e.cong.Widths)]
		clear(e.linkUse)
	}
}

// resizeGrid sets the outer slice to n reusable empty rows.
func resizeGrid[T any](g [][]T, n int) [][]T {
	if cap(g) < n {
		return make([][]T, n)
	}
	g = g[:n]
	for i := range g {
		g[i] = g[i][:0]
	}
	return g
}

// push schedules an event, assigning the tie-breaking sequence
// number, and restores the heap by sifting up.
func (e *Engine) push(ev simEvent) {
	e.evSeq++
	ev.seq = e.evSeq
	e.pq = append(e.pq, ev)
	i := len(e.pq) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventBefore(e.pq[i], e.pq[parent]) {
			break
		}
		e.pq[i], e.pq[parent] = e.pq[parent], e.pq[i]
		i = parent
	}
}

// pop removes and returns the earliest event. (t, seq) is a strict
// total order, so the pop sequence is independent of heap layout.
func (e *Engine) pop() simEvent {
	top := e.pq[0]
	n := len(e.pq) - 1
	e.pq[0] = e.pq[n]
	e.pq[n] = simEvent{} // drop stream/host refs from the tail slot
	e.pq = e.pq[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && eventBefore(e.pq[l], e.pq[least]) {
			least = l
		}
		if r < n && eventBefore(e.pq[r], e.pq[least]) {
			least = r
		}
		if least == i {
			break
		}
		e.pq[i], e.pq[least] = e.pq[least], e.pq[i]
		i = least
	}
	return top
}

func (e *Engine) stream(w int, id int64) *streamState {
	k := streamKey{w, id}
	st, ok := e.streams[k]
	if !ok {
		if n := len(e.freeStreams); n > 0 {
			st = e.freeStreams[n-1]
			e.freeStreams[n-1] = nil
			e.freeStreams = e.freeStreams[:n-1]
		} else {
			st = &streamState{}
		}
		st.w, st.id = w, id
		e.streams[k] = st
		e.byWorker[w] = append(e.byWorker[w], st)
	}
	return st
}

func (e *Engine) collGroup() *collGroup {
	if n := len(e.freeColls); n > 0 {
		g := e.freeColls[n-1]
		e.freeColls[n-1] = nil
		e.freeColls = e.freeColls[:n-1]
		return g
	}
	return &collGroup{}
}

func (e *Engine) recycleColl(g *collGroup) {
	clear(g.arrived)
	g.arrived = g.arrived[:0]
	g.arriveAt = g.arriveAt[:0]
	g.dur, g.expected = 0, 0
	e.freeColls = append(e.freeColls, g)
}

// ctxCheckEvery bounds how many events run between cancellation
// checks: large enough to keep the hot loop branch-cheap, small
// enough that cancelled simulations return within milliseconds.
const ctxCheckEvery = 1 << 13

// Run executes the event loop for the job bound by the last Reset
// and returns its report. Each Reset admits exactly one Run.
func (e *Engine) Run(ctx context.Context) (*Report, error) {
	if e.job == nil {
		return nil, errors.New("sim: Engine.Run before Reset")
	}
	if e.ran {
		return nil, errors.New("sim: Engine.Run called twice without Reset")
	}
	e.ran = true
	for i := range e.hosts {
		e.push(simEvent{t: 0, kind: evHostRun, host: &e.hosts[i]})
	}
	limit := int64(e.opts.TimeLimit)
	var processed int
	for len(e.pq) > 0 {
		if processed%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		processed++
		ev := e.pop()
		if limit > 0 && ev.t > limit {
			// Simulated time has crossed the horizon: the event order
			// is a strict total order, so this cut is bit-identical
			// for any pooling or goroutine schedule.
			rep := e.buildReport()
			rep.Truncated = true
			return rep, nil
		}
		e.now = ev.t
		switch ev.kind {
		case evHostRun:
			e.runHost(ev.host)
		case evOpEnd:
			e.opEnd(ev.st, ev.arg)
		case evStreamKick:
			e.kickStream(ev.st)
		case evCollDone:
			e.collDone(ev.st, ev.arg, ev.t)
		case evFlowStart:
			e.flowStart(ev.flow, ev.arg)
		case evFlowDone:
			e.flowDone(ev.flow, ev.arg)
		}
	}
	for i := range e.hosts {
		h := &e.hosts[i]
		if !h.done {
			if e.inj != nil && e.inj.FailStop != nil {
				// The wedge is the injected scenario, not a trace bug:
				// the dead worker froze and the survivors stalled on
				// its collectives. Report the stall frontier.
				rep := e.buildReport()
				rep.Halted = true
				return rep, nil
			}
			return nil, e.deadlockError(h)
		}
	}
	return e.buildReport(), nil
}

// deadlockError names the first blocked worker and, per stalled
// stream, the exact blocking key — the event version or collective
// key the run is waiting for. Workers and streams are visited in
// deterministic (creation) order, so the same invalid trace always
// produces the same message.
func (e *Engine) deadlockError(h *hostState) error {
	var why string
	switch h.wait {
	case waitEvent:
		why = "cudaEventSynchronize"
	case waitStream:
		why = fmt.Sprintf("cudaStreamSynchronize(stream %d)", h.waitStream.id)
	case waitDevice:
		why = "cudaDeviceSynchronize"
	default:
		why = "host dispatch"
	}
	for _, st := range e.byWorker[h.w] {
		if st.drained() {
			continue
		}
		switch {
		case st.stalledCol:
			op := st.queue[st.head].op
			if g := e.colls[trace.CollKeyOf(op)]; g != nil {
				why += fmt.Sprintf("; stream %d stalled in %s comm=%#x seq=%d (%d/%d joined)",
					st.id, op.Coll.Op, op.Coll.CommID, op.Coll.Seq, len(g.arrived), g.expected)
			} else {
				why += fmt.Sprintf("; stream %d stalled in %s comm=%#x seq=%d (in flight)",
					st.id, op.Coll.Op, op.Coll.CommID, op.Coll.Seq)
			}
		case st.stalledEv:
			why += fmt.Sprintf("; stream %d waiting for event %d v%d", st.id, st.waitKey.ev, st.waitKey.ver)
		case st.running:
			why += fmt.Sprintf("; stream %d running (%d/%d ops)", st.id, st.head, len(st.queue))
		default:
			why += fmt.Sprintf("; stream %d pending %d/%d ops", st.id, st.head, len(st.queue))
		}
	}
	return fmt.Errorf("sim: deadlock: worker %d blocked at op %d/%d (%s) t=%s",
		h.w, h.pos, len(h.ops), why, time.Duration(h.t))
}

// runHost advances one worker's host thread until it finishes or
// blocks on a synchronization call.
func (e *Engine) runHost(h *hostState) {
	h.scheduled = false
	if h.done {
		return
	}
	for h.pos < len(h.ops) {
		if e.inj != nil && e.inj.dead(h.w, h.t) {
			// Fail-stop: the host thread freezes mid-trace — not done,
			// so the drained heap reports Halted rather than a clean
			// finish.
			return
		}
		op := &h.ops[h.pos]
		switch op.Kind {
		case trace.KindHostDelay:
			if e.obs != nil {
				e.obs.HostDelay(h.w, h.t, h.t+int64(op.Dur))
			}
			h.t += int64(op.Dur)
			h.pos++
		case trace.KindMalloc, trace.KindFree:
			h.pos++
		case trace.KindMark:
			e.marks[h.w] = append(e.marks[h.w], MarkAt{Label: op.Name, At: time.Duration(h.t)})
			if e.obs != nil {
				e.obs.Mark(h.w, op.Name, h.t)
			}
			h.pos++
		case trace.KindEventSync:
			if op.EventVer == 0 {
				h.pos++
				continue
			}
			k := eventKey{h.w, op.Event, op.EventVer}
			if tc, ok := e.events[k]; ok {
				h.t = max(h.t, tc)
				h.pos++
				continue
			}
			h.wait = waitEvent
			e.evWaitHosts[k] = h
			return
		case trace.KindStreamSync:
			st := e.stream(h.w, op.Stream)
			if st.drained() {
				h.t = max(h.t, st.freeAt)
				h.pos++
				continue
			}
			h.wait = waitStream
			h.waitStream = st
			return
		case trace.KindDeviceSync:
			if t, ok := e.deviceDrained(h.w); ok {
				h.t = max(h.t, t)
				h.pos++
				continue
			}
			h.wait = waitDevice
			return
		case trace.KindCollective:
			if op.Coll.Seq < 0 {
				// Communicator initialization record: host-side only.
				h.pos++
				continue
			}
			st := e.stream(h.w, op.Stream)
			st.queue = append(st.queue, pendingOp{op: op, enq: h.t})
			h.pos++
			e.kickStream(st)
		default:
			st := e.stream(h.w, op.Stream)
			st.queue = append(st.queue, pendingOp{op: op, enq: h.t})
			h.pos++
			e.kickStream(st)
		}
	}
	h.done = true
}

// deviceDrained reports whether all streams of worker w are idle and
// empty, returning the latest completion time.
func (e *Engine) deviceDrained(w int) (int64, bool) {
	var t int64
	for _, st := range e.byWorker[w] {
		if !st.drained() {
			return 0, false
		}
		t = max(t, st.freeAt)
	}
	return t, true
}

// kickStream lets a stream consume queued ops until it starts timed
// work, stalls, or empties.
func (e *Engine) kickStream(st *streamState) {
	if st.running || st.stalledEv || st.stalledCol {
		return
	}
	for st.head < len(st.queue) {
		p := st.queue[st.head]
		op := p.op
		start := max(st.freeAt, p.enq)
		if e.inj != nil && e.inj.dead(st.w, start) {
			// The device stops starting work at the instant of death:
			// no event completions, no collective joins, no timed ops.
			// In-flight work was already scheduled and completes.
			return
		}
		switch op.Kind {
		case trace.KindEventRecord:
			st.head++
			st.freeAt = start
			e.completeEvent(eventKey{st.w, op.Event, op.EventVer}, start)
		case trace.KindStreamWait:
			if op.EventVer == 0 {
				st.head++
				continue
			}
			k := eventKey{st.w, op.Event, op.EventVer}
			if tc, ok := e.events[k]; ok {
				st.head++
				st.freeAt = max(start, tc)
				continue
			}
			st.stalledEv = true
			st.waitKey = k
			st.stallStart = start
			e.parkStream(k, st)
			if e.obs != nil {
				e.obs.StallBegin(st.w, st.id, StallEvent, start)
			}
			e.notifyDrain(st.w)
			return
		case trace.KindCollective:
			// The stream stalls until the group completes; the
			// completion event scheduled by the wait map advances it.
			st.stalledCol = true
			st.stallStart = start
			if e.obs != nil {
				e.obs.StallBegin(st.w, st.id, StallCollective, start)
			}
			e.joinCollective(st, op, start)
			return
		default:
			// Timed device work: kernel, memcpy, memset.
			dur := e.duration(op, st.w, start)
			isKernel := op.Kind == trace.KindKernel
			if isKernel && e.opts.CommContention > 0 {
				dur += e.contentionExtra(st.w, start, dur)
			}
			end := start + dur
			st.head++
			st.running = true
			st.curOp = op
			st.curStart, st.curEnd, st.curKernel = start, end, isKernel
			st.curIval = len(e.intervals[st.w])
			e.intervals[st.w] = append(e.intervals[st.w], interval{start: start, end: end})
			if e.chain {
				// Batched dispatch: consume the whole run of already
				// enqueued timed ops and schedule a single end event
				// at the run's end. Event/collective ops still break
				// the chain, so cross-stream ordering is untouched;
				// per-op intervals are recorded exactly as the
				// one-event-per-op path records them.
				for st.head < len(st.queue) {
					p := st.queue[st.head]
					switch p.op.Kind {
					case trace.KindEventRecord, trace.KindStreamWait, trace.KindCollective:
					default:
						s := max(end, p.enq)
						end = s + e.duration(p.op, st.w, s)
						st.head++
						st.curOp = p.op
						st.curStart, st.curEnd = s, end
						st.curKernel = p.op.Kind == trace.KindKernel
						e.intervals[st.w] = append(e.intervals[st.w], interval{start: s, end: end})
						continue
					}
					break
				}
			}
			st.freeAt = end
			if e.obs != nil {
				e.obs.OpStart(st.w, st.id, op, start, end)
			}
			e.push(simEvent{t: end, kind: evOpEnd, st: st, arg: st.epoch})
			return
		}
	}
	e.notifyDrain(st.w)
}

// parkStream appends the stream to the event key's FIFO wait list.
func (e *Engine) parkStream(k eventKey, st *streamState) {
	wl := e.evWaitStreams[k]
	if wl.head == nil {
		wl.head = st
	} else {
		wl.tail.nextWait = st
	}
	wl.tail = st
	e.evWaitStreams[k] = wl
}

// opDur reads an op's annotated duration: through the overlay when
// one is bound, from the trace otherwise.
func (e *Engine) opDur(w int, op *trace.Op) int64 {
	if e.ann != nil {
		return int64(e.ann.Dur(w, op.Seq))
	}
	return int64(op.Dur)
}

// duration applies fault stretch and jitter to an op's annotated
// time. start is the op's device start time, which straggler windows
// match against.
func (e *Engine) duration(op *trace.Op, w int, start int64) int64 {
	d := e.opDur(w, op)
	if d < 0 {
		d = 0
	}
	if e.inj != nil {
		d = e.inj.stretch(w, start, d)
	}
	if e.opts.JitterFrac > 0 {
		d = int64(float64(d) * e.rng.factor(int64(w), int64(op.Seq)))
	}
	return d
}

// opEnd completes a timed op; stale epochs identify completions that
// were superseded by a contention stretch.
func (e *Engine) opEnd(st *streamState, epoch int64) {
	if st.epoch != epoch {
		return
	}
	st.running = false
	if e.obs != nil {
		e.obs.OpEnd(st.w, st.id, st.curOp, st.curStart, st.curEnd)
	}
	st.curOp = nil
	e.kickStream(st)
	e.notifyDrain(st.w)
}

// collDone completes a collective for one participant: the interval
// [startAt, end) was its on-the-wire time.
func (e *Engine) collDone(st *streamState, startAt, end int64) {
	if e.opts.CommContention > 0 {
		e.dropActiveColl(st.w, startAt, end)
	}
	st.stalledCol = false
	st.head++
	st.freeAt = max(st.freeAt, end)
	e.kickStream(st)
	e.notifyDrain(st.w)
}

// contentionExtra returns the added runtime for a kernel on worker w
// spanning [start, start+dur) given the collectives already in flight.
func (e *Engine) contentionExtra(w int, start, dur int64) int64 {
	var overlap int64
	for _, iv := range e.activeColls[w] {
		lo := max(start, iv.start)
		hi := min(start+dur, iv.end)
		if hi > lo {
			overlap += hi - lo
		}
	}
	return int64(e.opts.CommContention * float64(overlap))
}

// stretchRunning extends kernels already executing on worker w that
// overlap a newly fired collective interval — SM contention works in
// both directions in the physical model.
func (e *Engine) stretchRunning(w int, cs, ce int64) {
	for _, st := range e.byWorker[w] {
		if !st.running || !st.curKernel {
			continue
		}
		lo := max(st.curStart, cs)
		hi := min(st.curEnd, ce)
		if hi <= lo {
			continue
		}
		extra := int64(e.opts.CommContention * float64(hi-lo))
		if extra <= 0 {
			continue
		}
		st.epoch++
		st.curEnd += extra
		st.freeAt = st.curEnd
		e.intervals[w][st.curIval].end = st.curEnd
		e.push(simEvent{t: st.curEnd, kind: evOpEnd, st: st, arg: st.epoch})
	}
}

// completeEvent records an event completion and releases its waiters
// (Algorithm 3, CudaEventWaitMap.ReleaseWaiters).
func (e *Engine) completeEvent(k eventKey, t int64) {
	e.events[k] = t
	if wl, ok := e.evWaitStreams[k]; ok {
		delete(e.evWaitStreams, k)
		for st := wl.head; st != nil; {
			next := st.nextWait
			st.nextWait = nil
			resume := max(st.stallStart, t)
			st.stalledEv = false
			st.head++
			st.freeAt = max(st.freeAt, resume)
			if e.obs != nil {
				e.obs.StallEnd(st.w, st.id, StallEvent, st.stallStart, resume)
			}
			e.push(simEvent{t: resume, kind: evStreamKick, st: st})
			st = next
		}
	}
	if h, ok := e.evWaitHosts[k]; ok {
		delete(e.evWaitHosts, k)
		resume := max(h.t, t)
		h.wait = waitNone
		h.t = resume
		h.pos++
		e.scheduleHost(h, resume)
	}
}

func (e *Engine) scheduleHost(h *hostState, t int64) {
	if h.scheduled {
		return
	}
	h.scheduled = true
	e.push(simEvent{t: t, kind: evHostRun, host: h})
}

// notifyDrain re-checks hosts of worker w that block on stream or
// device synchronization.
func (e *Engine) notifyDrain(w int) {
	h := &e.hosts[w]
	switch h.wait {
	case waitStream:
		if h.waitStream.drained() {
			t := max(h.t, h.waitStream.freeAt)
			h.wait = waitNone
			h.waitStream = nil
			h.t = t
			h.pos++
			e.scheduleHost(h, t)
		}
	case waitDevice:
		if t, ok := e.deviceDrained(w); ok {
			t = max(h.t, t)
			h.wait = waitNone
			h.t = t
			h.pos++
			e.scheduleHost(h, t)
		}
	}
}

// joinCollective implements the NetworkCollectiveWaitMap: the stream
// registers and stalls; the final participant releases the group.
func (e *Engine) joinCollective(st *streamState, op *trace.Op, arrive int64) {
	key := trace.CollKeyOf(op)
	g, ok := e.colls[key]
	if !ok {
		g = e.collGroup()
		exp := e.participants[key]
		if exp <= 0 {
			exp = 1
		}
		g.expected = exp
		e.colls[key] = g
	}
	g.arrived = append(g.arrived, st)
	g.arriveAt = append(g.arriveAt, arrive)
	g.dur = max(g.dur, e.opDur(st.w, op))
	if len(g.arrived) < g.expected {
		return
	}
	delete(e.colls, key)

	startAt := g.arriveAt[0]
	for _, t := range g.arriveAt {
		startAt = max(startAt, t)
	}
	dur := g.dur
	if e.opts.JitterFrac > 0 {
		dur = int64(float64(dur) * e.rng.factor(int64(key.Comm), int64(key.Seq)))
	}
	if e.cong != nil {
		if d, ok := e.cong.Demands[key]; ok && len(d.Links) > 0 {
			e.fireFlow(key, g, d, startAt, dur)
			return
		}
	}
	end := startAt + dur
	for i, p := range g.arrived {
		e.intervals[p.w] = append(e.intervals[p.w], interval{start: startAt, end: end, comm: true})
		if e.opts.CommContention > 0 {
			e.activeColls[p.w] = append(e.activeColls[p.w], interval{start: startAt, end: end})
			e.stretchRunning(p.w, startAt, end)
		}
		if e.obs != nil {
			pop := p.queue[p.head].op
			e.obs.StallEnd(p.w, p.id, StallCollective, g.arriveAt[i], startAt)
			e.obs.CollectiveFired(p.w, p.id, pop, key, startAt, end)
		}
		e.push(simEvent{t: end, kind: evCollDone, st: p, arg: startAt})
	}
	e.recycleColl(g)
}

// dropActiveColl removes one finished collective interval from the
// worker's active list.
func (e *Engine) dropActiveColl(w int, cs, ce int64) {
	list := e.activeColls[w]
	for i := range list {
		if list[i].start == cs && list[i].end == ce {
			list[i] = list[len(list)-1]
			e.activeColls[w] = list[:len(list)-1]
			return
		}
	}
}
