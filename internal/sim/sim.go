// Package sim is Maya's end-to-end discrete-event simulator. It
// replays an annotated job trace — every device op carries a
// predicted duration — against a model of hosts, devices and streams,
// reproducing the execution semantics of the CUDA runtime:
//
//   - each worker has a host dispatch queue that issues API calls in
//     program order, pausing for measured host delays and blocking on
//     synchronization calls;
//   - each device executes streams concurrently, each stream FIFO;
//   - cudaEventRecord/cudaStreamWaitEvent pairs synchronize streams
//     through a versioned event wait map (Algorithm 3 of the paper);
//   - NCCL collectives synchronize workers through a network
//     collective wait map: every participant blocks its stream until
//     the last one arrives, then all proceed in lockstep for the
//     predicted on-the-wire duration.
//
// Pipeline bubbles, compute/communication overlap and host-bound
// stretches all emerge from these rules rather than from explicit
// modeling, which is the point of simulating at CUDA-API granularity.
//
// A "physical" mode adds effects Maya's predictor deliberately does
// not model — per-kernel launch jitter and SM contention between
// overlapping compute and communication. The synthetic-silicon ground
// truth runs in that mode, so predicted-vs-actual experiments face
// the same reality gap the paper's do (§8, SM Contention).
package sim

import (
	"container/heap"
	"context"
	"fmt"
	"time"

	"maya/internal/prand"
	"maya/internal/trace"
)

// Options configures a simulation run.
type Options struct {
	// Participants overrides, per collective call, how many workers
	// the wait map expects. The collator provides this when
	// deduplicated jobs simulate only unique workers. Nil means every
	// call waits for all traced participants.
	Participants map[trace.CollKey]int

	// Physical-mode knobs (ground truth only; zero for prediction).

	// JitterFrac is the relative sigma of deterministic log-normal
	// noise applied to device op durations.
	JitterFrac float64
	// CommContention slows compute kernels that start while a
	// collective is in flight on the same device, modeling SM
	// contention between NCCL and compute kernels.
	CommContention float64
	// Seed drives the deterministic jitter.
	Seed uint64
}

// Run simulates the job and returns its report. It fails if the
// trace deadlocks (mismatched collectives or waits), which indicates
// an invalid workload rather than a simulator bug. The event loop
// observes ctx: a cancelled simulation stops promptly and returns
// ctx.Err().
func Run(ctx context.Context, job *trace.Job, opts Options) (*Report, error) {
	e := newEngine(job, opts)
	return e.run(ctx)
}

type eventKey struct {
	w   int
	ev  int64
	ver int
}

type pendingOp struct {
	op  *trace.Op
	enq int64 // host time at enqueue
}

type streamState struct {
	w     int
	id    int64
	queue []pendingOp
	head  int

	freeAt     int64
	running    bool
	stalledEv  *eventKey
	stalledCol bool
	stallStart int64

	// Running-op bookkeeping for SM-contention stretching.
	curStart  int64
	curEnd    int64
	curKernel bool
	curIval   int
	epoch     int64
}

func (st *streamState) drained() bool {
	return !st.running && st.stalledEv == nil && !st.stalledCol && st.head == len(st.queue)
}

type hostWait uint8

const (
	waitNone hostWait = iota
	waitEvent
	waitStream
	waitDevice
)

type hostState struct {
	w    int
	ops  []trace.Op
	pos  int
	t    int64
	done bool

	wait       hostWait
	waitStream *streamState
	scheduled  bool
}

type collGroup struct {
	arrived  []*streamState
	arriveAt []int64
	dur      int64
	expected int
}

type interval struct {
	start, end int64
	comm       bool
}

type simEvent struct {
	t   int64
	seq int64
	fn  func()
}

type eventHeap []simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(simEvent)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

type streamKey struct {
	w int
	s int64
}

type engine struct {
	job  *trace.Job
	opts Options

	pq    eventHeap
	evSeq int64
	now   int64

	hosts   []*hostState
	streams map[streamKey]*streamState
	// byWorker lists the streams each worker has touched, for
	// device-wide synchronization and drain checks.
	byWorker [][]*streamState

	events        map[eventKey]int64
	evWaitStreams map[eventKey][]*streamState
	evWaitHosts   map[eventKey][]*hostState

	colls        map[trace.CollKey]*collGroup
	participants map[trace.CollKey]int
	// activeColls tracks, per worker, the fired-but-unfinished
	// collective intervals, for SM-contention overlap queries.
	activeColls [][]interval

	intervals [][]interval
	marks     [][]MarkAt

	rng jitterSource
}

type jitterSource struct {
	frac float64
	seed uint64
}

func (j jitterSource) factor(a, b int64) float64 {
	if j.frac == 0 {
		return 1
	}
	h := prand.HashInts(j.seed, a, b)
	z := prand.New(h).NormFloat64()
	f := 1 + j.frac*z
	if f < 0.2 {
		f = 0.2
	}
	return f
}

func newEngine(job *trace.Job, opts Options) *engine {
	n := len(job.Workers)
	e := &engine{
		job:           job,
		opts:          opts,
		streams:       make(map[streamKey]*streamState),
		byWorker:      make([][]*streamState, n),
		events:        make(map[eventKey]int64),
		evWaitStreams: make(map[eventKey][]*streamState),
		evWaitHosts:   make(map[eventKey][]*hostState),
		colls:         make(map[trace.CollKey]*collGroup),
		participants:  opts.Participants,
		activeColls:   make([][]interval, n),
		intervals:     make([][]interval, n),
		marks:         make([][]MarkAt, n),
		rng:           jitterSource{frac: opts.JitterFrac, seed: opts.Seed},
	}
	e.hosts = make([]*hostState, n)
	for i, w := range job.Workers {
		e.hosts[i] = &hostState{w: i, ops: w.Ops}
	}
	if e.participants == nil {
		e.participants = trace.Participation(job)
	}
	return e
}

func (e *engine) schedule(t int64, fn func()) {
	e.evSeq++
	heap.Push(&e.pq, simEvent{t: t, seq: e.evSeq, fn: fn})
}

func (e *engine) stream(w int, id int64) *streamState {
	k := streamKey{w, id}
	st, ok := e.streams[k]
	if !ok {
		st = &streamState{w: w, id: id}
		e.streams[k] = st
		e.byWorker[w] = append(e.byWorker[w], st)
	}
	return st
}

// ctxCheckEvery bounds how many events run between cancellation
// checks: large enough to keep the hot loop branch-cheap, small
// enough that cancelled simulations return within milliseconds.
const ctxCheckEvery = 1 << 13

func (e *engine) run(ctx context.Context) (*Report, error) {
	for _, h := range e.hosts {
		hh := h
		e.schedule(0, func() { e.runHost(hh) })
	}
	var processed int
	for e.pq.Len() > 0 {
		if processed%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		processed++
		ev := heap.Pop(&e.pq).(simEvent)
		e.now = ev.t
		ev.fn()
	}
	for _, h := range e.hosts {
		if !h.done {
			return nil, fmt.Errorf("sim: deadlock: worker %d blocked at op %d/%d (%s) t=%s",
				h.w, h.pos, len(h.ops), e.blockReason(h), time.Duration(h.t))
		}
	}
	return e.buildReport(), nil
}

func (e *engine) blockReason(h *hostState) string {
	var why string
	switch h.wait {
	case waitEvent:
		why = "cudaEventSynchronize"
	case waitStream:
		why = fmt.Sprintf("cudaStreamSynchronize(stream %d)", h.waitStream.id)
	case waitDevice:
		why = "cudaDeviceSynchronize"
	default:
		why = "host dispatch"
	}
	for _, st := range e.byWorker[h.w] {
		if st.drained() {
			continue
		}
		switch {
		case st.stalledCol:
			op := st.queue[st.head].op
			why += fmt.Sprintf("; stream %d stalled in %s comm=%#x seq=%d (%d/%d joined)",
				st.id, op.Coll.Op, op.Coll.CommID, op.Coll.Seq,
				len(e.colls[trace.CollKeyOf(op)].arrived), e.colls[trace.CollKeyOf(op)].expected)
		case st.stalledEv != nil:
			why += fmt.Sprintf("; stream %d waiting for event %d v%d", st.id, st.stalledEv.ev, st.stalledEv.ver)
		case st.running:
			why += fmt.Sprintf("; stream %d running (%d/%d ops)", st.id, st.head, len(st.queue))
		default:
			why += fmt.Sprintf("; stream %d pending %d/%d ops", st.id, st.head, len(st.queue))
		}
	}
	return why
}

// runHost advances one worker's host thread until it finishes or
// blocks on a synchronization call.
func (e *engine) runHost(h *hostState) {
	h.scheduled = false
	if h.done {
		return
	}
	for h.pos < len(h.ops) {
		op := &h.ops[h.pos]
		switch op.Kind {
		case trace.KindHostDelay:
			h.t += int64(op.Dur)
			h.pos++
		case trace.KindMalloc, trace.KindFree:
			h.pos++
		case trace.KindMark:
			e.marks[h.w] = append(e.marks[h.w], MarkAt{Label: op.Name, At: time.Duration(h.t)})
			h.pos++
		case trace.KindEventSync:
			if op.EventVer == 0 {
				h.pos++
				continue
			}
			k := eventKey{h.w, op.Event, op.EventVer}
			if tc, ok := e.events[k]; ok {
				h.t = max(h.t, tc)
				h.pos++
				continue
			}
			h.wait = waitEvent
			e.evWaitHosts[k] = append(e.evWaitHosts[k], h)
			return
		case trace.KindStreamSync:
			st := e.stream(h.w, op.Stream)
			if st.drained() {
				h.t = max(h.t, st.freeAt)
				h.pos++
				continue
			}
			h.wait = waitStream
			h.waitStream = st
			return
		case trace.KindDeviceSync:
			if t, ok := e.deviceDrained(h.w); ok {
				h.t = max(h.t, t)
				h.pos++
				continue
			}
			h.wait = waitDevice
			return
		case trace.KindCollective:
			if op.Coll.Seq < 0 {
				// Communicator initialization record: host-side only.
				h.pos++
				continue
			}
			st := e.stream(h.w, op.Stream)
			st.queue = append(st.queue, pendingOp{op: op, enq: h.t})
			h.pos++
			e.kickStream(st)
		default:
			st := e.stream(h.w, op.Stream)
			st.queue = append(st.queue, pendingOp{op: op, enq: h.t})
			h.pos++
			e.kickStream(st)
		}
	}
	h.done = true
}

// deviceDrained reports whether all streams of worker w are idle and
// empty, returning the latest completion time.
func (e *engine) deviceDrained(w int) (int64, bool) {
	var t int64
	for _, st := range e.byWorker[w] {
		if !st.drained() {
			return 0, false
		}
		t = max(t, st.freeAt)
	}
	return t, true
}

// kickStream lets a stream consume queued ops until it starts timed
// work, stalls, or empties.
func (e *engine) kickStream(st *streamState) {
	if st.running || st.stalledEv != nil || st.stalledCol {
		return
	}
	for st.head < len(st.queue) {
		p := st.queue[st.head]
		op := p.op
		start := max(st.freeAt, p.enq)
		switch op.Kind {
		case trace.KindEventRecord:
			st.head++
			st.freeAt = start
			e.completeEvent(eventKey{st.w, op.Event, op.EventVer}, start)
		case trace.KindStreamWait:
			if op.EventVer == 0 {
				st.head++
				continue
			}
			k := eventKey{st.w, op.Event, op.EventVer}
			if tc, ok := e.events[k]; ok {
				st.head++
				st.freeAt = max(start, tc)
				continue
			}
			kk := k
			st.stalledEv = &kk
			st.stallStart = start
			e.evWaitStreams[k] = append(e.evWaitStreams[k], st)
			e.notifyDrain(st.w)
			return
		case trace.KindCollective:
			// The stream stalls until the group completes; the
			// completion event scheduled by the wait map advances it.
			st.stalledCol = true
			st.stallStart = start
			e.joinCollective(st, op, start)
			return
		default:
			// Timed device work: kernel, memcpy, memset.
			dur := e.duration(op, st.w)
			isKernel := op.Kind == trace.KindKernel
			if isKernel && e.opts.CommContention > 0 {
				dur += e.contentionExtra(st.w, start, dur)
			}
			end := start + dur
			st.head++
			st.running = true
			st.freeAt = end
			st.curStart, st.curEnd, st.curKernel = start, end, isKernel
			st.curIval = len(e.intervals[st.w])
			e.intervals[st.w] = append(e.intervals[st.w], interval{start: start, end: end})
			epoch := st.epoch
			e.schedule(end, func() { e.opEnd(st, epoch) })
			return
		}
	}
	e.notifyDrain(st.w)
}

// duration applies jitter to an op's annotated time.
func (e *engine) duration(op *trace.Op, w int) int64 {
	d := int64(op.Dur)
	if d < 0 {
		d = 0
	}
	if e.opts.JitterFrac > 0 {
		d = int64(float64(d) * e.rng.factor(int64(w), int64(op.Seq)))
	}
	return d
}

// opEnd completes a timed op; stale epochs identify completions that
// were superseded by a contention stretch.
func (e *engine) opEnd(st *streamState, epoch int64) {
	if st.epoch != epoch {
		return
	}
	st.running = false
	e.kickStream(st)
	e.notifyDrain(st.w)
}

// contentionExtra returns the added runtime for a kernel on worker w
// spanning [start, start+dur) given the collectives already in flight.
func (e *engine) contentionExtra(w int, start, dur int64) int64 {
	var overlap int64
	for _, iv := range e.activeColls[w] {
		lo := max(start, iv.start)
		hi := min(start+dur, iv.end)
		if hi > lo {
			overlap += hi - lo
		}
	}
	return int64(e.opts.CommContention * float64(overlap))
}

// stretchRunning extends kernels already executing on worker w that
// overlap a newly fired collective interval — SM contention works in
// both directions in the physical model.
func (e *engine) stretchRunning(w int, cs, ce int64) {
	for _, st := range e.byWorker[w] {
		if !st.running || !st.curKernel {
			continue
		}
		lo := max(st.curStart, cs)
		hi := min(st.curEnd, ce)
		if hi <= lo {
			continue
		}
		extra := int64(e.opts.CommContention * float64(hi-lo))
		if extra <= 0 {
			continue
		}
		st.epoch++
		st.curEnd += extra
		st.freeAt = st.curEnd
		e.intervals[w][st.curIval].end = st.curEnd
		epoch := st.epoch
		end := st.curEnd
		sst := st
		e.schedule(end, func() { e.opEnd(sst, epoch) })
	}
}

// completeEvent records an event completion and releases its waiters
// (Algorithm 3, CudaEventWaitMap.ReleaseWaiters).
func (e *engine) completeEvent(k eventKey, t int64) {
	e.events[k] = t
	if ws := e.evWaitStreams[k]; len(ws) > 0 {
		delete(e.evWaitStreams, k)
		for _, st := range ws {
			sst := st
			resume := max(sst.stallStart, t)
			sst.stalledEv = nil
			sst.head++
			sst.freeAt = max(sst.freeAt, resume)
			e.schedule(resume, func() { e.kickStream(sst) })
		}
	}
	if hs := e.evWaitHosts[k]; len(hs) > 0 {
		delete(e.evWaitHosts, k)
		for _, h := range hs {
			hh := h
			resume := max(hh.t, t)
			hh.wait = waitNone
			hh.t = resume
			hh.pos++
			e.scheduleHost(hh, resume)
		}
	}
}

func (e *engine) scheduleHost(h *hostState, t int64) {
	if h.scheduled {
		return
	}
	h.scheduled = true
	e.schedule(t, func() { e.runHost(h) })
}

// notifyDrain re-checks hosts of worker w that block on stream or
// device synchronization.
func (e *engine) notifyDrain(w int) {
	h := e.hosts[w]
	switch h.wait {
	case waitStream:
		if h.waitStream.drained() {
			t := max(h.t, h.waitStream.freeAt)
			h.wait = waitNone
			h.waitStream = nil
			h.t = t
			h.pos++
			e.scheduleHost(h, t)
		}
	case waitDevice:
		if t, ok := e.deviceDrained(w); ok {
			t = max(h.t, t)
			h.wait = waitNone
			h.t = t
			h.pos++
			e.scheduleHost(h, t)
		}
	}
}

// joinCollective implements the NetworkCollectiveWaitMap: the stream
// registers and stalls; the final participant releases the group.
func (e *engine) joinCollective(st *streamState, op *trace.Op, arrive int64) {
	key := trace.CollKeyOf(op)
	g, ok := e.colls[key]
	if !ok {
		exp := e.participants[key]
		if exp <= 0 {
			exp = 1
		}
		g = &collGroup{expected: exp}
		e.colls[key] = g
	}
	g.arrived = append(g.arrived, st)
	g.arriveAt = append(g.arriveAt, arrive)
	g.dur = max(g.dur, int64(op.Dur))
	if len(g.arrived) < g.expected {
		return
	}
	delete(e.colls, key)

	startAt := g.arriveAt[0]
	for _, t := range g.arriveAt {
		startAt = max(startAt, t)
	}
	dur := g.dur
	if e.opts.JitterFrac > 0 {
		dur = int64(float64(dur) * e.rng.factor(int64(key.Comm), int64(key.Seq)))
	}
	end := startAt + dur
	for _, part := range g.arrived {
		p := part
		e.intervals[p.w] = append(e.intervals[p.w], interval{start: startAt, end: end, comm: true})
		if e.opts.CommContention > 0 {
			e.activeColls[p.w] = append(e.activeColls[p.w], interval{start: startAt, end: end})
			e.stretchRunning(p.w, startAt, end)
		}
		e.schedule(end, func() {
			if e.opts.CommContention > 0 {
				e.dropActiveColl(p.w, startAt, end)
			}
			p.stalledCol = false
			p.head++
			p.freeAt = max(p.freeAt, end)
			e.kickStream(p)
			e.notifyDrain(p.w)
		})
	}
}

// dropActiveColl removes one finished collective interval from the
// worker's active list.
func (e *engine) dropActiveColl(w int, cs, ce int64) {
	list := e.activeColls[w]
	for i := range list {
		if list[i].start == cs && list[i].end == ce {
			list[i] = list[len(list)-1]
			e.activeColls[w] = list[:len(list)-1]
			return
		}
	}
}
