package sim

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"maya/internal/trace"
)

// build constructs a worker trace from a compact op list.
func worker(rank, world int, ops ...trace.Op) *trace.Worker {
	w := &trace.Worker{Rank: rank, World: world, Device: "test"}
	for _, op := range ops {
		w.Append(op)
	}
	return w
}

func job(t *testing.T, ws ...*trace.Worker) *trace.Job {
	t.Helper()
	j, err := trace.NewJob(ws)
	if err != nil {
		t.Fatalf("NewJob: %v", err)
	}
	return j
}

func kernel(stream int64, dur time.Duration) trace.Op {
	return trace.Op{Kind: trace.KindKernel, Name: "k", Stream: stream, Dur: dur}
}

func hostDelay(d time.Duration) trace.Op {
	return trace.Op{Kind: trace.KindHostDelay, Dur: d}
}

func coll(stream int64, comm uint64, seq, nranks, rank int, dur time.Duration) trace.Op {
	return trace.Op{
		Kind: trace.KindCollective, Name: "ncclAllReduce", Stream: stream, Dur: dur,
		Coll: &trace.Collective{Op: "ncclAllReduce", CommID: comm, Seq: seq, NRanks: nranks, Rank: rank, Peer: -1},
	}
}

func mustRun(t *testing.T, j *trace.Job, opts Options) *Report {
	t.Helper()
	r, err := Run(context.Background(), j, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

func TestRunPreCancelledContext(t *testing.T) {
	w := worker(0, 1, kernel(0, time.Millisecond), trace.Op{Kind: trace.KindDeviceSync})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, job(t, w), Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run with cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestSequentialKernelsSingleStream(t *testing.T) {
	w := worker(0, 1,
		kernel(0, 10*time.Millisecond),
		kernel(0, 20*time.Millisecond),
		trace.Op{Kind: trace.KindDeviceSync},
	)
	r := mustRun(t, job(t, w), Options{})
	if got, want := r.Makespan, 30*time.Millisecond; got != want {
		t.Fatalf("makespan = %v, want %v", got, want)
	}
	if got, want := r.ComputeBusy[0], 30*time.Millisecond; got != want {
		t.Fatalf("compute busy = %v, want %v", got, want)
	}
}

func TestHostDelaySerializesDispatch(t *testing.T) {
	// 5ms host gap between two 10ms kernels on one stream: the second
	// kernel is enqueued at 5ms but the stream is busy until 10ms, so
	// total is 20ms, not 25ms (async dispatch hides host time).
	w := worker(0, 1,
		kernel(0, 10*time.Millisecond),
		hostDelay(5*time.Millisecond),
		kernel(0, 10*time.Millisecond),
		trace.Op{Kind: trace.KindDeviceSync},
	)
	r := mustRun(t, job(t, w), Options{})
	if got, want := r.Makespan, 20*time.Millisecond; got != want {
		t.Fatalf("makespan = %v, want %v", got, want)
	}

	// If the host gap exceeds the first kernel, the gap is exposed.
	w2 := worker(0, 1,
		kernel(0, 10*time.Millisecond),
		hostDelay(15*time.Millisecond),
		kernel(0, 10*time.Millisecond),
		trace.Op{Kind: trace.KindDeviceSync},
	)
	r2 := mustRun(t, job(t, w2), Options{})
	if got, want := r2.Makespan, 25*time.Millisecond; got != want {
		t.Fatalf("makespan = %v, want %v", got, want)
	}
}

func TestStreamsRunConcurrently(t *testing.T) {
	w := worker(0, 1,
		kernel(1, 10*time.Millisecond),
		kernel(2, 10*time.Millisecond),
		trace.Op{Kind: trace.KindDeviceSync},
	)
	r := mustRun(t, job(t, w), Options{})
	if got, want := r.Makespan, 10*time.Millisecond; got != want {
		t.Fatalf("makespan = %v, want %v (streams should overlap)", got, want)
	}
	// Union of overlapping intervals counts once.
	if got, want := r.ComputeBusy[0], 10*time.Millisecond; got != want {
		t.Fatalf("compute busy = %v, want %v", got, want)
	}
}

func TestEventSynchronizationAcrossStreams(t *testing.T) {
	// Stream 1 runs a 10ms kernel then records event (id=7, ver=1).
	// Stream 2 waits on the event before its 5ms kernel. Total 15ms.
	w := worker(0, 1,
		kernel(1, 10*time.Millisecond),
		trace.Op{Kind: trace.KindEventRecord, Stream: 1, Event: 7, EventVer: 1},
		trace.Op{Kind: trace.KindStreamWait, Stream: 2, Event: 7, EventVer: 1},
		kernel(2, 5*time.Millisecond),
		trace.Op{Kind: trace.KindDeviceSync},
	)
	r := mustRun(t, job(t, w), Options{})
	if got, want := r.Makespan, 15*time.Millisecond; got != want {
		t.Fatalf("makespan = %v, want %v", got, want)
	}
}

func TestWaitOnUnrecordedEventIsNoOp(t *testing.T) {
	w := worker(0, 1,
		trace.Op{Kind: trace.KindStreamWait, Stream: 1, Event: 9, EventVer: 0},
		kernel(1, 5*time.Millisecond),
		trace.Op{Kind: trace.KindDeviceSync},
	)
	r := mustRun(t, job(t, w), Options{})
	if got, want := r.Makespan, 5*time.Millisecond; got != want {
		t.Fatalf("makespan = %v, want %v", got, want)
	}
}

func TestEventVersioningBindsToRecordAtWaitTime(t *testing.T) {
	// Event 3 recorded twice. A wait that saw version 1 must not wait
	// for version 2's later completion.
	w := worker(0, 1,
		kernel(1, 10*time.Millisecond),
		trace.Op{Kind: trace.KindEventRecord, Stream: 1, Event: 3, EventVer: 1},
		trace.Op{Kind: trace.KindStreamWait, Stream: 2, Event: 3, EventVer: 1},
		kernel(2, 1*time.Millisecond), // ends at 11ms
		kernel(1, 30*time.Millisecond),
		trace.Op{Kind: trace.KindEventRecord, Stream: 1, Event: 3, EventVer: 2},
		trace.Op{Kind: trace.KindStreamSync, Stream: 2},
		trace.Op{Kind: trace.KindMark, Name: "stream2_done"},
		trace.Op{Kind: trace.KindDeviceSync},
	)
	r := mustRun(t, job(t, w), Options{})
	var s2done time.Duration
	for _, m := range r.Marks[0] {
		if m.Label == "stream2_done" {
			s2done = m.At
		}
	}
	if got, want := s2done, 11*time.Millisecond; got != want {
		t.Fatalf("stream2 finished at %v, want %v", got, want)
	}
	if got, want := r.Makespan, 40*time.Millisecond; got != want {
		t.Fatalf("makespan = %v, want %v", got, want)
	}
}

func TestEventSyncBlocksHost(t *testing.T) {
	w := worker(0, 1,
		kernel(1, 10*time.Millisecond),
		trace.Op{Kind: trace.KindEventRecord, Stream: 1, Event: 5, EventVer: 1},
		trace.Op{Kind: trace.KindEventSync, Event: 5, EventVer: 1},
		trace.Op{Kind: trace.KindMark, Name: "after_sync"},
	)
	r := mustRun(t, job(t, w), Options{})
	if got, want := r.Marks[0][0].At, 10*time.Millisecond; got != want {
		t.Fatalf("host resumed at %v, want %v", got, want)
	}
}

func TestCollectiveLockstep(t *testing.T) {
	// Two workers: rank 1 arrives at the all-reduce 30ms late, so both
	// finish at 30+20=50ms. Rank 0's wait (the pipeline-bubble effect)
	// emerges from the wait map.
	w0 := worker(0, 2,
		kernel(0, 10*time.Millisecond),
		coll(0, 42, 0, 2, 0, 20*time.Millisecond),
		trace.Op{Kind: trace.KindDeviceSync},
	)
	w1 := worker(1, 2,
		kernel(0, 30*time.Millisecond),
		coll(0, 42, 0, 2, 1, 20*time.Millisecond),
		trace.Op{Kind: trace.KindDeviceSync},
	)
	r := mustRun(t, job(t, w0, w1), Options{})
	for i, end := range r.HostEnd {
		if end != 50*time.Millisecond {
			t.Fatalf("worker %d end = %v, want 50ms", i, end)
		}
	}
	if got, want := r.CommBusy[0], 20*time.Millisecond; got != want {
		t.Fatalf("comm busy = %v, want %v", got, want)
	}
}

func TestComputeCommOverlapOnSeparateStreams(t *testing.T) {
	// Collective on stream 2 overlaps compute on stream 1.
	mk := func(rank int) *trace.Worker {
		return worker(rank, 2,
			coll(2, 7, 0, 2, rank, 20*time.Millisecond),
			kernel(1, 20*time.Millisecond),
			trace.Op{Kind: trace.KindDeviceSync},
		)
	}
	r := mustRun(t, job(t, mk(0), mk(1)), Options{})
	if got, want := r.Makespan, 20*time.Millisecond; got != want {
		t.Fatalf("makespan = %v, want %v (overlap)", got, want)
	}
	if got := r.ExposedComm[0]; got != 0 {
		t.Fatalf("exposed comm = %v, want 0 (fully hidden)", got)
	}
}

func TestSendRecvPairing(t *testing.T) {
	// Rank 0 sends to rank 1 after 10ms of compute; rank 1 recvs then
	// computes 5ms. Xfer takes 3ms: total 18ms.
	w0 := worker(0, 2,
		kernel(0, 10*time.Millisecond),
		trace.Op{Kind: trace.KindCollective, Name: "ncclSend", Stream: 0, Dur: 3 * time.Millisecond,
			Coll: &trace.Collective{Op: "ncclSend", CommID: 9, Seq: 0, NRanks: 2, Rank: 0, Peer: 1, Bytes: 1 << 20}},
		trace.Op{Kind: trace.KindDeviceSync},
	)
	w1 := worker(1, 2,
		trace.Op{Kind: trace.KindCollective, Name: "ncclRecv", Stream: 0, Dur: 3 * time.Millisecond,
			Coll: &trace.Collective{Op: "ncclRecv", CommID: 9, Seq: 0, NRanks: 2, Rank: 1, Peer: 0, Bytes: 1 << 20}},
		kernel(0, 5*time.Millisecond),
		trace.Op{Kind: trace.KindDeviceSync},
	)
	r := mustRun(t, job(t, w0, w1), Options{Participants: map[trace.CollKey]int{
		{Comm: 9, P2P: true, Src: 0, Dst: 1, Seq: 0}: 2,
	}})
	if got, want := r.HostEnd[1], 18*time.Millisecond; got != want {
		t.Fatalf("receiver end = %v, want %v", got, want)
	}
}

func TestDeadlockDetection(t *testing.T) {
	// A collective expecting 2 participants that only one worker joins
	// must be reported as a deadlock, not hang.
	w0 := worker(0, 2, coll(0, 1, 0, 2, 0, time.Millisecond), trace.Op{Kind: trace.KindDeviceSync})
	w1 := worker(1, 2, kernel(0, time.Millisecond), trace.Op{Kind: trace.KindDeviceSync})
	j := job(t, w0, w1)
	_, err := Run(context.Background(), j, Options{Participants: map[trace.CollKey]int{
		{Comm: 1, Seq: 0}: 2,
	}})
	if err == nil {
		t.Fatal("expected deadlock error, got nil")
	}
}

func TestDedupParticipantsOverride(t *testing.T) {
	// With deduplication only one of two DP replicas is simulated; the
	// collective must fire with a single participant.
	w0 := worker(0, 2,
		kernel(0, 10*time.Millisecond),
		coll(0, 5, 0, 2, 0, 20*time.Millisecond),
		trace.Op{Kind: trace.KindDeviceSync},
	)
	r := mustRun(t, job(t, w0), Options{})
	if got, want := r.Makespan, 30*time.Millisecond; got != want {
		t.Fatalf("makespan = %v, want %v", got, want)
	}
}

func TestIterationTimeFromMarks(t *testing.T) {
	var ops []trace.Op
	ops = append(ops, trace.Op{Kind: trace.KindMark, Name: trace.MarkSetupEnd})
	for i := 0; i < 3; i++ {
		ops = append(ops,
			kernel(0, 10*time.Millisecond),
			trace.Op{Kind: trace.KindDeviceSync},
			trace.Op{Kind: trace.KindMark, Name: trace.MarkIterEnd},
		)
	}
	w := worker(0, 1, ops...)
	r := mustRun(t, job(t, w), Options{})
	if got, want := r.IterTime(), 10*time.Millisecond; got != want {
		t.Fatalf("iter time = %v, want %v", got, want)
	}
	if got := len(r.IterEnds()); got != 3 {
		t.Fatalf("iter ends = %d, want 3", got)
	}
}

func TestPhysicalModeJitterIsDeterministic(t *testing.T) {
	mk := func() *trace.Job {
		return job(t, worker(0, 1,
			kernel(0, 10*time.Millisecond),
			kernel(0, 10*time.Millisecond),
			trace.Op{Kind: trace.KindDeviceSync},
		))
	}
	opts := Options{JitterFrac: 0.05, Seed: 1234}
	r1 := mustRun(t, mk(), opts)
	r2 := mustRun(t, mk(), opts)
	if r1.Makespan != r2.Makespan {
		t.Fatalf("jitter not deterministic: %v vs %v", r1.Makespan, r2.Makespan)
	}
	if r1.Makespan == 20*time.Millisecond {
		t.Fatalf("jitter had no effect: %v", r1.Makespan)
	}
	r3 := mustRun(t, mk(), Options{JitterFrac: 0.05, Seed: 99})
	if r3.Makespan == r1.Makespan {
		t.Fatalf("different seeds produced identical jitter")
	}
}

func TestContentionStretchesOverlappedCompute(t *testing.T) {
	mk := func(rank int) *trace.Worker {
		return worker(rank, 2,
			coll(2, 7, 0, 2, rank, 20*time.Millisecond),
			kernel(1, 10*time.Millisecond),
			trace.Op{Kind: trace.KindDeviceSync},
		)
	}
	r := mustRun(t, job(t, mk(0), mk(1)), Options{CommContention: 0.5})
	// Kernel starts while the collective is in flight: 10ms * 1.5.
	if got, want := r.ComputeBusy[0], 15*time.Millisecond; got != want {
		t.Fatalf("compute busy = %v, want %v", got, want)
	}
}

func TestStreamSyncBlocksOnlyThatStream(t *testing.T) {
	w := worker(0, 1,
		kernel(1, 10*time.Millisecond),
		kernel(2, 50*time.Millisecond),
		trace.Op{Kind: trace.KindStreamSync, Stream: 1},
		trace.Op{Kind: trace.KindMark, Name: "s1_done"},
		trace.Op{Kind: trace.KindDeviceSync},
	)
	r := mustRun(t, job(t, w), Options{})
	if got, want := r.Marks[0][0].At, 10*time.Millisecond; got != want {
		t.Fatalf("stream sync returned at %v, want %v", got, want)
	}
	if got, want := r.Makespan, 50*time.Millisecond; got != want {
		t.Fatalf("makespan = %v, want %v", got, want)
	}
}

func TestPipelineBubbleEmergesFromP2P(t *testing.T) {
	// Two pipeline stages, 2 microbatches, no overlap: stage 1 idles
	// until the first activation arrives. Forward-only toy pipeline.
	const f = 10 * time.Millisecond
	xfer := time.Millisecond
	send := func(seq int) trace.Op {
		return trace.Op{Kind: trace.KindCollective, Name: "ncclSend", Stream: 0, Dur: xfer,
			Coll: &trace.Collective{Op: "ncclSend", CommID: 3, Seq: seq, NRanks: 2, Rank: 0, Peer: 1, Bytes: 1024}}
	}
	recv := func(seq int) trace.Op {
		return trace.Op{Kind: trace.KindCollective, Name: "ncclRecv", Stream: 0, Dur: xfer,
			Coll: &trace.Collective{Op: "ncclRecv", CommID: 3, Seq: seq, NRanks: 2, Rank: 1, Peer: 0, Bytes: 1024}}
	}
	w0 := worker(0, 2, kernel(0, f), send(0), kernel(0, f), send(1), trace.Op{Kind: trace.KindDeviceSync})
	w1 := worker(1, 2, recv(0), kernel(0, f), recv(1), kernel(0, f), trace.Op{Kind: trace.KindDeviceSync})
	r := mustRun(t, job(t, w0, w1), Options{})
	// Stage 1 finishes mb0 at 10+1+10=21ms, recv mb1 ready at 21ms
	// (sent at 21ms... rank0: f ends 10, send 10-11, f ends 21, send 21-22).
	// Stage 1: recv0 done 11, k ends 21, recv1 at max(21,22)=22, k ends 32.
	if got, want := r.HostEnd[1], 32*time.Millisecond; got != want {
		t.Fatalf("stage-1 end = %v, want %v", got, want)
	}
}

func TestDeadlockErrorNamesWorkerStreamAndKey(t *testing.T) {
	// A mismatched collective: the wait map expects 2 participants but
	// only worker 0 ever joins. The error must name the stalled
	// worker, its stream, and the blocking collective key with join
	// counts — and be deterministic across runs.
	mk := func() *trace.Job {
		w0 := worker(0, 2, coll(3, 0x2a, 7, 2, 0, time.Millisecond), trace.Op{Kind: trace.KindDeviceSync})
		w1 := worker(1, 2, kernel(0, time.Millisecond), trace.Op{Kind: trace.KindDeviceSync})
		return job(t, w0, w1)
	}
	opts := Options{Participants: map[trace.CollKey]int{{Comm: 0x2a, Seq: 7}: 2}}
	_, err := Run(context.Background(), mk(), opts)
	if err == nil {
		t.Fatal("expected deadlock error, got nil")
	}
	msg := err.Error()
	for _, want := range []string{
		"sim: deadlock",
		"worker 0",
		"stream 3",
		"ncclAllReduce",
		"comm=0x2a",
		"seq=7",
		"(1/2 joined)",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("deadlock error missing %q:\n%s", want, msg)
		}
	}
	_, err2 := Run(context.Background(), mk(), opts)
	if err2 == nil || err2.Error() != msg {
		t.Errorf("deadlock error not deterministic:\n%s\nvs\n%s", msg, err2)
	}
}

func TestDeadlockErrorNamesEventKey(t *testing.T) {
	// A stream wait on an event version that is never recorded.
	w := worker(0, 1,
		trace.Op{Kind: trace.KindStreamWait, Stream: 4, Event: 9, EventVer: 3},
		kernel(4, time.Millisecond),
		trace.Op{Kind: trace.KindDeviceSync},
	)
	_, err := Run(context.Background(), job(t, w), Options{})
	if err == nil {
		t.Fatal("expected deadlock error, got nil")
	}
	msg := err.Error()
	for _, want := range []string{"worker 0", "stream 4", "event 9 v3"} {
		if !strings.Contains(msg, want) {
			t.Errorf("deadlock error missing %q:\n%s", want, msg)
		}
	}
}

// physicalFixture is a job exercising every engine mechanism: multi
// stream, event sync, collectives, stream/device sync, marks.
func physicalFixture(t *testing.T) *trace.Job {
	mk := func(rank int) *trace.Worker {
		return worker(rank, 2,
			kernel(1, 10*time.Millisecond),
			trace.Op{Kind: trace.KindEventRecord, Stream: 1, Event: 7, EventVer: 1},
			trace.Op{Kind: trace.KindStreamWait, Stream: 2, Event: 7, EventVer: 1},
			hostDelay(time.Millisecond),
			coll(2, 42, 0, 2, rank, 20*time.Millisecond),
			kernel(1, 5*time.Millisecond),
			trace.Op{Kind: trace.KindStreamSync, Stream: 2},
			trace.Op{Kind: trace.KindMark, Name: trace.MarkIterEnd},
			trace.Op{Kind: trace.KindDeviceSync},
		)
	}
	return job(t, mk(0), mk(1))
}

func reportsEqual(a, b *Report) bool {
	if a.Makespan != b.Makespan || len(a.HostEnd) != len(b.HostEnd) {
		return false
	}
	for i := range a.HostEnd {
		if a.HostEnd[i] != b.HostEnd[i] || a.ComputeBusy[i] != b.ComputeBusy[i] ||
			a.CommBusy[i] != b.CommBusy[i] || a.ExposedComm[i] != b.ExposedComm[i] {
			return false
		}
		if len(a.Marks[i]) != len(b.Marks[i]) {
			return false
		}
		for j := range a.Marks[i] {
			if a.Marks[i][j] != b.Marks[i][j] {
				return false
			}
		}
	}
	return true
}

func TestEngineReuseMatchesFreshRuns(t *testing.T) {
	// One engine Reset across different jobs and physical-mode options
	// must reproduce fresh-engine results exactly.
	opts := Options{JitterFrac: 0.05, CommContention: 0.5, Seed: 1234}
	want1 := mustRun(t, physicalFixture(t), opts)
	want2 := mustRun(t, physicalFixture(t), Options{})

	e := NewEngine()
	for i := 0; i < 3; i++ {
		e.Reset(physicalFixture(t), opts)
		got, err := e.Run(context.Background())
		if err != nil {
			t.Fatalf("reused engine run %d: %v", i, err)
		}
		if !reportsEqual(got, want1) {
			t.Fatalf("reused engine diverged on run %d:\n got %+v\nwant %+v", i, got, want1)
		}
		e.Reset(physicalFixture(t), Options{})
		got2, err := e.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !reportsEqual(got2, want2) {
			t.Fatalf("reused engine diverged on alternate options, run %d", i)
		}
	}
}

func TestRunPooledMatchesRun(t *testing.T) {
	opts := Options{JitterFrac: 0.02, CommContention: 0.3, Seed: 7}
	want := mustRun(t, physicalFixture(t), opts)
	for i := 0; i < 4; i++ {
		got, err := RunPooled(context.Background(), physicalFixture(t), opts)
		if err != nil {
			t.Fatalf("RunPooled: %v", err)
		}
		if !reportsEqual(got, want) {
			t.Fatalf("RunPooled diverged from Run on iteration %d", i)
		}
	}
}

func TestEngineRunLifecycleErrors(t *testing.T) {
	e := NewEngine()
	if _, err := e.Run(context.Background()); err == nil {
		t.Fatal("Run before Reset should error")
	}
	e.Reset(physicalFixture(t), Options{})
	if _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background()); err == nil {
		t.Fatal("second Run without Reset should error")
	}
}

func TestReportDoesNotAliasEngineStorage(t *testing.T) {
	// A report taken from an engine must survive the engine being
	// reset and rerun with a different job (the pooled-reuse hazard:
	// Marks used to alias e.marks).
	e := NewEngine()
	e.Reset(physicalFixture(t), Options{})
	rep, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	marks := append([]MarkAt(nil), rep.Marks[0]...)
	hostEnd := append([]time.Duration(nil), rep.HostEnd...)

	w := worker(0, 1,
		trace.Op{Kind: trace.KindMark, Name: "other_mark"},
		kernel(0, time.Millisecond),
		trace.Op{Kind: trace.KindMark, Name: "another"},
		trace.Op{Kind: trace.KindDeviceSync},
	)
	e.Reset(job(t, w), Options{})
	if _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	for i := range marks {
		if rep.Marks[0][i] != marks[i] {
			t.Fatalf("report marks mutated by engine reuse: %v vs %v", rep.Marks[0], marks)
		}
	}
	for i := range hostEnd {
		if rep.HostEnd[i] != hostEnd[i] {
			t.Fatalf("report host ends mutated by engine reuse")
		}
	}
}

// countingObserver tallies every callback.
type countingObserver struct {
	opStarts, opEnds, colls, stallBegins, stallEnds, hostDelays, marks int
	lastStall                                                          StallKind
}

func (c *countingObserver) OpStart(int, int64, *trace.Op, int64, int64) { c.opStarts++ }
func (c *countingObserver) OpEnd(int, int64, *trace.Op, int64, int64)   { c.opEnds++ }
func (c *countingObserver) CollectiveFired(int, int64, *trace.Op, trace.CollKey, int64, int64) {
	c.colls++
}
func (c *countingObserver) StallBegin(_ int, _ int64, k StallKind, _ int64) {
	c.stallBegins++
	c.lastStall = k
}
func (c *countingObserver) StallEnd(int, int64, StallKind, int64, int64) { c.stallEnds++ }
func (c *countingObserver) HostDelay(int, int64, int64)                  { c.hostDelays++ }
func (c *countingObserver) Mark(int, string, int64)                      { c.marks++ }

func TestObserverSeesEveryEvent(t *testing.T) {
	obs := &countingObserver{}
	j := physicalFixture(t)
	withObs := mustRun(t, j, Options{Observer: obs})
	plain := mustRun(t, physicalFixture(t), Options{})
	if !reportsEqual(withObs, plain) {
		t.Fatal("attaching an observer changed simulation results")
	}
	// Per worker: 2 timed kernels, 1 collective, 1 event-wait stall
	// (stream 2 waits for event 7), 1 collective stall, 1 host delay,
	// 1 mark.
	if obs.opStarts != 4 || obs.opEnds != 4 {
		t.Errorf("op callbacks = %d/%d, want 4/4", obs.opStarts, obs.opEnds)
	}
	if obs.colls != 2 {
		t.Errorf("collective callbacks = %d, want 2 (one per participant)", obs.colls)
	}
	if obs.stallBegins != 4 || obs.stallEnds != 4 {
		t.Errorf("stall callbacks = %d/%d, want 4/4", obs.stallBegins, obs.stallEnds)
	}
	if obs.hostDelays != 2 {
		t.Errorf("host delay callbacks = %d, want 2", obs.hostDelays)
	}
	if obs.marks != 2 {
		t.Errorf("mark callbacks = %d, want 2", obs.marks)
	}
}

func TestObserversComposition(t *testing.T) {
	if Observers() != nil || Observers(nil, nil) != nil {
		t.Fatal("Observers of nothing should be nil (the engine's fast path)")
	}
	a := &countingObserver{}
	if got := Observers(nil, a); got != Observer(a) {
		t.Fatal("single live observer should be returned unwrapped")
	}
	b := &countingObserver{}
	multi := Observers(a, nil, b)
	mustRun(t, physicalFixture(t), Options{Observer: multi})
	if a.opEnds == 0 || a.opEnds != b.opEnds || a.marks != b.marks {
		t.Fatalf("fan-out diverged: a=%+v b=%+v", a, b)
	}
}
