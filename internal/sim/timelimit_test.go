package sim

import (
	"context"
	"reflect"
	"testing"
	"time"

	"maya/internal/trace"
)

// limitFixture is a two-worker trace with a straggler-gated
// collective and trailing compute: structure on both sides of any
// mid-trace horizon.
func limitFixture(t *testing.T) *trace.Job {
	t.Helper()
	w0 := worker(0, 2,
		kernel(0, 10*time.Millisecond),
		coll(0, 1, 0, 2, 0, 5*time.Millisecond),
		kernel(0, 10*time.Millisecond),
		kernel(0, 10*time.Millisecond),
		trace.Op{Kind: trace.KindDeviceSync},
	)
	w1 := worker(1, 2,
		kernel(0, 25*time.Millisecond), // straggler delays the collective
		coll(0, 1, 0, 2, 1, 5*time.Millisecond),
		kernel(0, 10*time.Millisecond),
		kernel(0, 10*time.Millisecond),
		trace.Op{Kind: trace.KindDeviceSync},
	)
	return job(t, w0, w1)
}

func TestTimeLimitBeyondMakespanIsNoOp(t *testing.T) {
	j := limitFixture(t)
	full := mustRun(t, j, Options{})
	if full.Truncated {
		t.Fatal("unlimited run reported Truncated")
	}
	limited := mustRun(t, j, Options{TimeLimit: full.Makespan + time.Millisecond})
	if limited.Truncated {
		t.Fatalf("limit %v beyond makespan %v still truncated", full.Makespan+time.Millisecond, full.Makespan)
	}
	if !reflect.DeepEqual(full, limited) {
		t.Fatalf("beyond-makespan limit changed the report:\nfull    %+v\nlimited %+v", full, limited)
	}
	// A limit equal to the makespan also completes: truncation
	// requires an event strictly beyond the horizon.
	atEdge := mustRun(t, j, Options{TimeLimit: full.Makespan})
	if atEdge.Truncated {
		t.Fatal("limit == makespan truncated")
	}
}

func TestTimeLimitTruncates(t *testing.T) {
	j := limitFixture(t)
	full := mustRun(t, j, Options{})
	limit := 20 * time.Millisecond // inside worker 1's straggler kernel
	r := mustRun(t, j, Options{TimeLimit: limit})
	if !r.Truncated {
		t.Fatalf("limit %v (makespan %v) did not truncate", limit, full.Makespan)
	}
	if r.Makespan >= full.Makespan {
		t.Fatalf("truncated makespan %v not below full %v", r.Makespan, full.Makespan)
	}
	// The report is a prefix: no busy time beyond what the full run
	// accumulated.
	for i := range r.ComputeBusy {
		if r.ComputeBusy[i] > full.ComputeBusy[i] {
			t.Fatalf("worker %d truncated compute busy %v exceeds full %v", i, r.ComputeBusy[i], full.ComputeBusy[i])
		}
	}
}

// TestTimeLimitDeterministic asserts the truncation cut is exactly
// reproducible: repeated runs, fresh and pooled engines, all produce
// bit-identical reports at every horizon.
func TestTimeLimitDeterministic(t *testing.T) {
	j := limitFixture(t)
	for _, limit := range []time.Duration{
		time.Millisecond, 10 * time.Millisecond, 25 * time.Millisecond,
		30 * time.Millisecond, 40 * time.Millisecond,
	} {
		base := mustRun(t, j, Options{TimeLimit: limit})
		for i := 0; i < 3; i++ {
			again := mustRun(t, j, Options{TimeLimit: limit})
			if !reflect.DeepEqual(base, again) {
				t.Fatalf("limit %v: run %d diverged:\nbase  %+v\nagain %+v", limit, i, base, again)
			}
			pooled, err := RunPooled(context.Background(), j, Options{TimeLimit: limit})
			if err != nil {
				t.Fatalf("RunPooled: %v", err)
			}
			if !reflect.DeepEqual(base, pooled) {
				t.Fatalf("limit %v: pooled run diverged:\nbase   %+v\npooled %+v", limit, base, pooled)
			}
		}
	}
}

// TestTimeLimitNoDeadlockError asserts a truncated run never reports
// the (spurious) deadlock a half-drained trace would otherwise look
// like.
func TestTimeLimitNoDeadlockError(t *testing.T) {
	j := limitFixture(t)
	if _, err := Run(context.Background(), j, Options{TimeLimit: time.Millisecond}); err != nil {
		t.Fatalf("truncated run errored: %v", err)
	}
}
