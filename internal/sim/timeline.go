package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"maya/internal/trace"
)

// Timeline is an Observer that records the run as a Chrome-trace
// ("trace event format") timeline loadable in chrome://tracing and
// Perfetto: one process per worker, one thread per stream (plus a
// "host" thread), complete events for kernels/memops/collectives/
// stalls/host stretches and instant events for application marks.
//
// Use one Timeline per run; it is not safe for concurrent runs.
// Times are emitted in microseconds, the format's unit.
type Timeline struct {
	events []chromeEvent
}

// NewTimeline returns an empty timeline recorder.
func NewTimeline() *Timeline { return &Timeline{} }

// hostTID is the synthetic thread id of a worker's host track.
// Stream handles are non-negative, so -1 cannot collide.
const hostTID = -1

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func usec(ns int64) float64 { return float64(ns) / 1e3 }

// Len reports how many timeline events have been recorded.
func (t *Timeline) Len() int { return len(t.events) }

// OpStart implements Observer. The timeline records ops at OpEnd,
// when the (possibly contention-stretched) end time is final.
func (t *Timeline) OpStart(int, int64, *trace.Op, int64, int64) {}

// OpEnd implements Observer.
func (t *Timeline) OpEnd(w int, stream int64, op *trace.Op, start, end int64) {
	name := op.Name
	if name == "" {
		name = op.Kind.String()
	}
	t.events = append(t.events, chromeEvent{
		Name: name, Cat: op.Kind.String(), Ph: "X",
		TS: usec(start), Dur: usec(end - start), PID: w, TID: stream,
	})
}

// CollectiveFired implements Observer.
func (t *Timeline) CollectiveFired(w int, stream int64, op *trace.Op, key trace.CollKey, start, end int64) {
	t.events = append(t.events, chromeEvent{
		Name: op.Coll.Op, Cat: "collective", Ph: "X",
		TS: usec(start), Dur: usec(end - start), PID: w, TID: stream,
		Args: map[string]any{
			"comm":  fmt.Sprintf("%#x", op.Coll.CommID),
			"seq":   op.Coll.Seq,
			"bytes": op.Coll.Bytes,
		},
	})
}

// StallBegin implements Observer.
func (t *Timeline) StallBegin(int, int64, StallKind, int64) {}

// StallEnd implements Observer.
func (t *Timeline) StallEnd(w int, stream int64, kind StallKind, begin, end int64) {
	if end <= begin {
		return
	}
	t.events = append(t.events, chromeEvent{
		Name: kind.String(), Cat: "stall", Ph: "X",
		TS: usec(begin), Dur: usec(end - begin), PID: w, TID: stream,
	})
}

// HostDelay implements Observer.
func (t *Timeline) HostDelay(w int, start, end int64) {
	if end <= start {
		return
	}
	t.events = append(t.events, chromeEvent{
		Name: "host", Cat: "host", Ph: "X",
		TS: usec(start), Dur: usec(end - start), PID: w, TID: hostTID,
	})
}

// Mark implements Observer.
func (t *Timeline) Mark(w int, label string, at int64) {
	t.events = append(t.events, chromeEvent{
		Name: label, Cat: "mark", Ph: "i",
		TS: usec(at), PID: w, TID: hostTID, S: "p",
	})
}

// WriteChromeTrace emits the recorded run in Chrome trace-event JSON,
// prefixed with process/thread metadata naming workers, streams and
// host tracks. Events appear in simulation order; the output is
// deterministic for a deterministic run.
func (t *Timeline) WriteChromeTrace(w io.Writer) error {
	type track struct {
		pid int
		tid int64
	}
	pids := map[int]bool{}
	tracks := map[track]bool{}
	for _, ev := range t.events {
		pids[ev.PID] = true
		tracks[track{ev.PID, ev.TID}] = true
	}
	meta := make([]chromeEvent, 0, len(pids)+len(tracks))
	for _, pid := range sortedKeys(pids) {
		meta = append(meta, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", pid)},
		})
	}
	trs := make([]track, 0, len(tracks))
	for tr := range tracks {
		trs = append(trs, tr)
	}
	sort.Slice(trs, func(i, j int) bool {
		if trs[i].pid != trs[j].pid {
			return trs[i].pid < trs[j].pid
		}
		return trs[i].tid < trs[j].tid
	})
	for _, tr := range trs {
		name := fmt.Sprintf("stream %d", tr.tid)
		if tr.tid == hostTID {
			name = "host"
		}
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", PID: tr.pid, TID: tr.tid,
			Args: map[string]any{"name": name},
		})
	}
	out := chromeTrace{
		TraceEvents:     append(meta, t.events...),
		DisplayTimeUnit: "ms",
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

func sortedKeys(m map[int]bool) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}
