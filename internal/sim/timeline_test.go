package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"maya/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// timelineFixture is a small two-worker job touching every timeline
// event class: kernels, an event wait, a collective, a host stretch
// and a mark.
func timelineFixture(t *testing.T) *trace.Job {
	mk := func(rank int) *trace.Worker {
		return worker(rank, 2,
			kernel(1, 10*time.Millisecond),
			trace.Op{Kind: trace.KindEventRecord, Stream: 1, Event: 7, EventVer: 1},
			trace.Op{Kind: trace.KindStreamWait, Stream: 2, Event: 7, EventVer: 1},
			hostDelay(2*time.Millisecond),
			coll(2, 0x42, 0, 2, rank, 20*time.Millisecond),
			kernel(1, 5*time.Millisecond),
			trace.Op{Kind: trace.KindMark, Name: trace.MarkIterEnd},
			trace.Op{Kind: trace.KindDeviceSync},
		)
	}
	return job(t, mk(0), mk(1))
}

func TestTimelineChromeTraceGolden(t *testing.T) {
	tl := NewTimeline()
	if _, err := Run(context.Background(), timelineFixture(t), Options{Observer: tl}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace drifted from golden (run with -update if intended):\n%s", buf.String())
	}
}

func TestTimelineChromeTraceShape(t *testing.T) {
	// Independent of the golden bytes, the export must be valid
	// trace-event JSON with the right structure: a traceEvents array
	// of complete/instant/metadata events carrying pid/tid/ts.
	tl := NewTimeline()
	if _, err := Run(context.Background(), timelineFixture(t), Options{Observer: tl}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  *int           `json:"pid"`
			TID  *int64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	counts := map[string]int{}
	names := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.PID == nil || ev.TID == nil {
			t.Fatalf("event %q missing pid/tid", ev.Name)
		}
		counts[ev.Ph]++
		names[ev.Name]++
		if ev.Ph == "X" && ev.Name != "host" && ev.Dur < 0 {
			t.Errorf("negative duration on %q", ev.Name)
		}
	}
	// 2 workers × (2 kernels + 1 collective + 1 host stretch) complete
	// events, plus any nonzero stalls; 2 marks; metadata for 2
	// processes and their threads.
	if counts["X"] < 8 {
		t.Errorf("complete events = %d, want >= 8", counts["X"])
	}
	if counts["i"] != 2 {
		t.Errorf("instant (mark) events = %d, want 2", counts["i"])
	}
	if counts["M"] == 0 {
		t.Error("no metadata events")
	}
	for _, want := range []string{"k", "ncclAllReduce", "host", "process_name", "thread_name", trace.MarkIterEnd} {
		if names[want] == 0 {
			t.Errorf("export missing %q events", want)
		}
	}
	// The collective carries its matching key in args.
	for _, ev := range doc.TraceEvents {
		if ev.Name == "ncclAllReduce" {
			if ev.Args["comm"] != "0x42" {
				t.Errorf("collective args = %v, want comm 0x42", ev.Args)
			}
			break
		}
	}
}
