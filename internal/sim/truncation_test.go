package sim

import (
	"context"
	"reflect"
	"testing"
	"time"

	"maya/internal/trace"
)

// recEvent is one observer callback, flattened for comparison.
type recEvent struct {
	kind   string
	w      int
	stream int64
	seq    int
	stall  StallKind
	label  string
	a, b   int64
}

// recorder captures every observer callback in arrival order.
type recorder struct{ events []recEvent }

func (r *recorder) OpStart(w int, stream int64, op *trace.Op, start, end int64) {
	r.events = append(r.events, recEvent{kind: "opStart", w: w, stream: stream, seq: op.Seq, a: start, b: end})
}

func (r *recorder) OpEnd(w int, stream int64, op *trace.Op, start, end int64) {
	r.events = append(r.events, recEvent{kind: "opEnd", w: w, stream: stream, seq: op.Seq, a: start, b: end})
}

func (r *recorder) CollectiveFired(w int, stream int64, op *trace.Op, key trace.CollKey, start, end int64) {
	r.events = append(r.events, recEvent{kind: "coll", w: w, stream: stream, seq: op.Seq, a: start, b: end})
}

func (r *recorder) StallBegin(w int, stream int64, kind StallKind, at int64) {
	r.events = append(r.events, recEvent{kind: "stallBegin", w: w, stream: stream, stall: kind, a: at})
}

func (r *recorder) StallEnd(w int, stream int64, kind StallKind, begin, end int64) {
	r.events = append(r.events, recEvent{kind: "stallEnd", w: w, stream: stream, stall: kind, a: begin, b: end})
}

func (r *recorder) HostDelay(w int, start, end int64) {
	r.events = append(r.events, recEvent{kind: "hostDelay", w: w, a: start, b: end})
}

func (r *recorder) Mark(w int, label string, at int64) {
	r.events = append(r.events, recEvent{kind: "mark", w: w, label: label, a: at})
}

// TestTimeLimitCongestionPrefixExact crosses the two features that
// each reshape the event walk — the congestion solver (flow retuning
// events) and the simulated-clock horizon. A truncated congested run
// must process exactly the untruncated run's event prefix: same
// callbacks, same times, same order, for any engine strategy.
func TestTimeLimitCongestionPrefixExact(t *testing.T) {
	// Staggered pair collectives on one shared width-1 link, with
	// compute before and after: flows retune mid-run (arrival at 1ms,
	// departure at 3ms) and activity continues past every horizon.
	j := job(t,
		worker(0, 4, collOn(0, 1, 0, 2, 0, 2*time.Millisecond), kernel(0, time.Millisecond)),
		worker(1, 4, collOn(0, 1, 0, 2, 1, 2*time.Millisecond), kernel(0, time.Millisecond)),
		worker(2, 4, hostDelay(time.Millisecond), collOn(0, 2, 0, 2, 0, 2*time.Millisecond), kernel(0, time.Millisecond)),
		worker(3, 4, hostDelay(time.Millisecond), collOn(0, 2, 0, 2, 1, 2*time.Millisecond), kernel(0, time.Millisecond)),
	)
	cong := &CongestionModel{
		Widths: []int32{1},
		Demands: map[trace.CollKey]CollDemand{
			key(1, 0): {Links: []int32{0}},
			key(2, 0): {Links: []int32{0}},
		},
	}

	full := &recorder{}
	rep := mustRun(t, j, Options{Congestion: cong, Observer: full})
	if rep.Truncated {
		t.Fatal("unlimited run reported truncation")
	}
	if len(full.events) == 0 {
		t.Fatal("no events recorded")
	}

	for _, limit := range []time.Duration{
		500 * time.Microsecond,  // mid first flow, before the retune
		1500 * time.Microsecond, // both flows sharing the link
		3500 * time.Microsecond, // past departure, into the tail compute
	} {
		part := &recorder{}
		rt, err := Run(context.Background(), j, Options{Congestion: cong, Observer: part, TimeLimit: limit})
		if err != nil {
			t.Fatalf("limit %v: %v", limit, err)
		}
		if !rt.Truncated {
			t.Fatalf("limit %v: run not truncated", limit)
		}
		if len(part.events) == 0 || len(part.events) >= len(full.events) {
			t.Fatalf("limit %v: %d events of %d, want a proper prefix", limit, len(part.events), len(full.events))
		}
		if !reflect.DeepEqual(part.events, full.events[:len(part.events)]) {
			t.Fatalf("limit %v: truncated run is not an exact prefix:\n got %+v\nwant %+v",
				limit, part.events, full.events[:len(part.events)])
		}

		// The same cut is bit-identical through the engine pool.
		pooled := &recorder{}
		rp, err := RunPooled(context.Background(), j, Options{Congestion: cong, Observer: pooled, TimeLimit: limit})
		if err != nil {
			t.Fatalf("limit %v pooled: %v", limit, err)
		}
		if !rp.Truncated || !reflect.DeepEqual(pooled.events, part.events) {
			t.Fatalf("limit %v: pooled run diverged from fresh engine", limit)
		}
		if !reflect.DeepEqual(rp, rt) {
			t.Fatalf("limit %v: pooled report diverged:\n got %+v\nwant %+v", limit, rp, rt)
		}
	}
}
