package topo

import (
	"strings"
	"testing"

	"maya/internal/hardware"
)

// FuzzTopoByName shakes the topology-spec parser with hostile input:
// whatever the spec string, ByName must either return an error or a
// validated topology covering every GPU of the cluster — never panic,
// never hand back a fabric the simulator would divide by zero on.
func FuzzTopoByName(f *testing.F) {
	seeds := []string{
		"", "auto", "flat", "rail", "oversub:4", "pods:2", // the grammar
		"oversub", "pods", "oversub:", "pods:", // missing args
		"oversub:0", "oversub:-1", "pods:0", "pods:-3", // non-positive
		"pods:999999999", "oversub:9223372036854775808", // huge / overflow
		"auto:1", "flat:", "rail:0", // args where none belong
		":", "::", "a:b:c", "oversub:+4", "pods:0x2", // junk shapes
		" flat", "flat ", "FLAT", "päds:2", "oversub:4\n", // spacing, case, unicode
		strings.Repeat("pods:", 100),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	clusters := []hardware.Cluster{
		hardware.DGXV100(2), // hybrid cube-mesh, multi-node
		hardware.DGXH100(8), // NVSwitch islands at scale
		hardware.A40Node(),  // single PCIe node: no inter level
	}
	f.Fuzz(func(t *testing.T, spec string) {
		for _, c := range clusters {
			tp, err := ByName(spec, c)
			if err != nil {
				continue // rejected: fine, as long as it didn't panic
			}
			if tp == nil {
				t.Fatalf("ByName(%q, %s) returned nil topology without error", spec, c.Name)
			}
			if tp.Leaves() != c.TotalGPUs() {
				t.Fatalf("ByName(%q, %s): %d leaves for %d GPUs", spec, c.Name, tp.Leaves(), c.TotalGPUs())
			}
			for i, l := range tp.Levels[1:] {
				if l.BWGBps <= 0 || l.Links < 1 || l.Fanout < 1 {
					t.Fatalf("ByName(%q, %s): degenerate level %d: %+v", spec, c.Name, i+1, l)
				}
			}
		}
	})
}
