// Package topo models cluster network fabrics as declarative level
// hierarchies: GPU → NVLink island → node → leaf/spine, each level a
// plain record of fan-out, per-member bandwidth, hop latency and link
// count. New fabrics are data, not code — a rail-optimized spine, an
// oversubscribed core or a pod hierarchy is just a different []Level.
//
// A Topology also names every shared-bandwidth link domain in the
// fabric (the internal fabric of each unit, and each unit's uplink
// into its parent) with a dense int32 id, and Resolve maps a
// communicator's rank set to the levels it spans and the link domains
// it occupies. The netsim collective model selects algorithms against
// the spans; the sim engine's congestion mode charges concurrent
// collectives against the link occupancies.
package topo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"maya/internal/hardware"
)

// Effective-bandwidth derates shared by every consumer of the model
// (previously scattered as inline literals across netsim).
const (
	// NVSwitchDerate is achievable/peak NVLink bandwidth through an
	// NVSwitch plane.
	NVSwitchDerate = 0.85
	// CubeMeshDerate accounts for the asymmetric hybrid cube-mesh of
	// DGX-V100, where not every pair has a direct link.
	CubeMeshDerate = 0.55
	// PCIeDerate is achievable/peak PCIe bandwidth (pairwise-NVLink
	// nodes route collectives over PCIe).
	PCIeDerate = 0.65
	// InterDerate is achievable/peak NIC bandwidth for inter-node
	// collectives. This is the single inter-node derate: send/recv and
	// group collectives use the same constant.
	InterDerate = 0.80
)

// Fixed hop latencies of the model.
const (
	// IntraLatency is the per-hop latency inside a node.
	IntraLatency = 5 * time.Microsecond
	// InterSwitchLatency is the switching overhead added on top of the
	// interconnect's base latency for inter-node hops.
	InterSwitchLatency = 6 * time.Microsecond
)

// Level is one tier of the fabric hierarchy. Levels[0] is always the
// leaf ("gpu", Fanout 1, no fabric of its own); every higher level
// groups Fanout units of the level below behind a shared fabric.
type Level struct {
	// Name labels the level ("gpu", "island", "spine", ...).
	Name string
	// Fanout is the number of level-below units per unit of this
	// level. Levels[0] has Fanout 1.
	Fanout int
	// BWGBps is the effective per-member bandwidth through this
	// level's fabric, in GB/s (derates already applied).
	BWGBps float64
	// Latency is the per-hop latency of crossing this level.
	Latency time.Duration
	// Links is the number of parallel links each child has into this
	// level's fabric — the capacity unit of congestion: a link domain
	// of width k serves k concurrent collectives at full rate.
	Links int
}

// Topology is a validated, precomputed fabric hierarchy.
type Topology struct {
	// Name identifies the topology (the spec string it was built
	// from: "auto", "flat", "rail", "oversub:4", "pods:2", ...).
	Name   string
	Levels []Level

	sizes      []int // leaves per unit at each level
	leaves     int
	fabricBase []int32 // first link id of each level's fabric domains
	uplinkBase []int32 // first link id of each level's unit uplinks
	numLinks   int32
	widths     []int32
}

// New validates and precomputes a topology. Levels[0] must be the
// leaf (Fanout 1); every other level needs Fanout ≥ 1, positive
// bandwidth and at least one link.
func New(name string, levels []Level) (*Topology, error) {
	if len(levels) < 2 {
		return nil, fmt.Errorf("topo: %q needs at least a leaf and one fabric level, got %d", name, len(levels))
	}
	if levels[0].Fanout != 1 {
		return nil, fmt.Errorf("topo: %q leaf level %q must have fanout 1, got %d", name, levels[0].Name, levels[0].Fanout)
	}
	t := &Topology{Name: name, Levels: append([]Level(nil), levels...)}
	t.sizes = make([]int, len(levels))
	t.sizes[0] = 1
	for i := 1; i < len(levels); i++ {
		l := levels[i]
		if l.Fanout < 1 {
			return nil, fmt.Errorf("topo: %q level %q has fanout %d", name, l.Name, l.Fanout)
		}
		if l.BWGBps <= 0 {
			return nil, fmt.Errorf("topo: %q level %q has no bandwidth", name, l.Name)
		}
		if l.Links < 1 {
			return nil, fmt.Errorf("topo: %q level %q has %d links", name, l.Name, l.Links)
		}
		t.sizes[i] = t.sizes[i-1] * l.Fanout
	}
	t.leaves = t.sizes[len(levels)-1]

	// Link-domain ids: the fabric of every unit at levels 1..L-1,
	// then the uplink of every unit at levels 1..L-2 into its parent.
	// Allocation order makes per-level id ranges contiguous and
	// ascending, so Resolve can emit sorted link lists without a sort.
	L := len(levels)
	t.fabricBase = make([]int32, L)
	t.uplinkBase = make([]int32, L)
	var id int32
	for i := 1; i < L; i++ {
		t.fabricBase[i] = id
		for u := 0; u < t.units(i); u++ {
			t.widths = append(t.widths, int32(levels[i].Links))
		}
		id += int32(t.units(i))
	}
	for i := 1; i < L-1; i++ {
		t.uplinkBase[i] = id
		for u := 0; u < t.units(i); u++ {
			t.widths = append(t.widths, int32(levels[i+1].Links))
		}
		id += int32(t.units(i))
	}
	t.numLinks = id
	return t, nil
}

// units returns how many units exist at a level.
func (t *Topology) units(i int) int { return t.leaves / t.sizes[i] }

// Leaves returns the number of leaf (GPU) positions in the fabric.
func (t *Topology) Leaves() int { return t.leaves }

// NumLinks returns the number of distinct link domains.
func (t *Topology) NumLinks() int { return int(t.numLinks) }

// LinkWidths returns the per-link-domain capacity (parallel physical
// links): a domain of width k serves k concurrent flows at full rate.
// The returned slice is shared; callers must not mutate it.
func (t *Topology) LinkWidths() []int32 { return t.widths }

func (t *Topology) String() string {
	parts := make([]string, len(t.Levels))
	for i, l := range t.Levels {
		parts[i] = fmt.Sprintf("%s×%d", l.Name, l.Fanout)
	}
	return fmt.Sprintf("%s[%s]", t.Name, strings.Join(parts, " "))
}

// Path is the resolved footprint of one communicator on the fabric.
type Path struct {
	// N is the communicator's declared size.
	N int
	// Span[i] is how many level-i units the group touches. Span[0] is
	// N; partial memberships are extrapolated to the declared size.
	Span []int
	// Links lists the link domains the group's traffic occupies,
	// ascending. Only domains evidenced by observed members are
	// charged: for partial memberships the unobserved units' links
	// are unknowable, so the footprint is a deterministic lower bound.
	Links []int32
}

// Top returns the highest level the group actually crosses: the
// smallest level index whose span is 1. A single-rank group returns
// 0; a group confined to one island returns 1.
func (p Path) Top() int {
	for i, s := range p.Span {
		if s == 1 {
			return i
		}
	}
	return len(p.Span) - 1
}

// Resolve maps a communicator's rank set to its fabric footprint.
// ranks may be partial (deduplicated captures observe only unique
// workers); membership is completed by extending the observed stride,
// exactly as trace.ExpandRanks does, before spans and links are
// derived. nranks ≤ 0 means len(ranks).
func (t *Topology) Resolve(ranks []int, nranks int) Path {
	n := nranks
	if n <= 0 {
		n = len(ranks)
	}
	L := len(t.Levels)
	p := Path{N: n, Span: make([]int, L)}
	for i := range p.Span {
		p.Span[i] = 1
	}
	if n <= 0 {
		return p
	}
	p.Span[0] = n

	members := t.memberSet(ranks, n)
	distinct := len(members)
	if distinct == 0 {
		return p
	}

	// Observed spans: members are sorted, so unit ids per level are
	// non-decreasing and distinct counts are one linear pass each.
	observed := make([]int, L)
	observed[0] = distinct
	for i := 1; i < L; i++ {
		cnt, last := 0, -1
		for _, m := range members {
			if u := m / t.sizes[i]; u != last {
				cnt++
				last = u
			}
		}
		observed[i] = cnt
	}

	// Partial membership: scale each level's span by the declared
	// size, assuming the unobserved members follow the observed
	// packing density (occ members per touched unit).
	for i := 1; i < L; i++ {
		sp := observed[i]
		if distinct < n && observed[i] > 0 {
			occ := (distinct + observed[i] - 1) / observed[i]
			sp = (n + occ - 1) / occ
			if sp < observed[i] {
				sp = observed[i]
			}
			if u := t.units(i); sp > u {
				sp = u
			}
		}
		p.Span[i] = sp
	}

	// Fabric domains: the fabric of unit u at level i carries traffic
	// iff at least two of u's children are touched.
	for i := 1; i < L; i++ {
		if observed[i-1] < 2 {
			continue
		}
		unit, child, kids := -1, -1, 0
		flush := func() {
			if kids >= 2 {
				p.Links = append(p.Links, t.fabricBase[i]+int32(unit))
			}
		}
		for _, m := range members {
			u, c := m/t.sizes[i], m/t.sizes[i-1]
			if u != unit {
				if unit >= 0 {
					flush()
				}
				unit, child, kids = u, c, 1
				continue
			}
			if c != child {
				child = c
				kids++
			}
		}
		flush()
	}
	// Uplink domains: every touched level-i unit sends traffic up iff
	// the group spans more than one level-i unit.
	for i := 1; i < L-1; i++ {
		if p.Span[i] < 2 {
			continue
		}
		last := -1
		for _, m := range members {
			if u := m / t.sizes[i]; u != last {
				p.Links = append(p.Links, t.uplinkBase[i]+int32(u))
				last = u
			}
		}
	}
	return p
}

// memberSet completes a partial rank set to the declared size by
// stride extrapolation, then sorts and deduplicates it.
func (t *Topology) memberSet(ranks []int, n int) []int {
	var members []int
	if len(ranks) >= n {
		members = append(members, ranks...)
	} else if len(ranks) > 0 {
		stride := 1
		if len(ranks) >= 2 {
			stride = ranks[1] - ranks[0]
			if stride <= 0 {
				stride = 1
			}
		} else if t.leaves > n {
			stride = t.leaves / n
		}
		members = make([]int, 0, n)
		for i := 0; i < n; i++ {
			members = append(members, ranks[0]+i*stride)
		}
	} else {
		return nil
	}
	for i, m := range members {
		if m < 0 {
			m = -m
		}
		members[i] = m % t.leaves
	}
	sort.Ints(members)
	out := members[:0]
	last := -1
	for _, m := range members {
		if m != last {
			out = append(out, m)
			last = m
		}
	}
	return out
}

// FromCluster derives the canonical hierarchical topology of a
// cluster: GPU leaves, an NVLink island per node, and (for multi-node
// clusters) a single spine fabric between nodes.
func FromCluster(c hardware.Cluster) *Topology {
	bw, links := intraFabric(c.Node)
	levels := []Level{
		{Name: "gpu", Fanout: 1},
		{Name: "island", Fanout: c.Node.GPUsPerNode, BWGBps: bw, Latency: IntraLatency, Links: links},
	}
	if c.Nodes > 1 {
		levels = append(levels, spineLevel(c, 1))
	}
	return mustNew("auto", levels)
}

// spineLevel builds the inter-node level with the given per-node
// uplink count.
func spineLevel(c hardware.Cluster, links int) Level {
	return Level{
		Name:    "spine",
		Fanout:  c.Nodes,
		BWGBps:  c.Node.Inter.PerGPUGBps * InterDerate,
		Latency: c.Node.Inter.BaseLatency + InterSwitchLatency,
		Links:   links,
	}
}

// intraFabric returns the effective intra-node bandwidth and link
// count for a node's internal topology.
func intraFabric(n hardware.Node) (bwGBps float64, links int) {
	switch n.Topology {
	case hardware.NVSwitch:
		return n.GPU.NVLinkGBps * NVSwitchDerate, n.GPUsPerNode
	case hardware.CubeMesh:
		return n.GPU.NVLinkGBps * CubeMeshDerate, 2
	default: // pairwise NVLink and PCIe-only both bottleneck on PCIe
		return n.PCIeGBps * PCIeDerate, 1
	}
}

func mustNew(name string, levels []Level) *Topology {
	t, err := New(name, levels)
	if err != nil {
		panic(err) // unreachable for catalog clusters
	}
	return t
}

// ByName builds a topology for a cluster from a spec string:
//
//	"" / "auto"  the cluster's canonical hierarchy (FromCluster)
//	"flat"       one fabric over all GPUs at inter-node bandwidth —
//	             the pre-hierarchical baseline, for fidelity studies
//	"rail"       auto, with a rail-optimized spine: one uplink per
//	             GPU instead of one per node
//	"oversub:K"  auto, with the spine bandwidth oversubscribed K:1
//	"pods:K"     four levels: islands, pods of K nodes at full
//	             inter-node bandwidth, and a half-bandwidth,
//	             double-latency core between pods
func ByName(spec string, c hardware.Cluster) (*Topology, error) {
	name, arg, hasArg := strings.Cut(spec, ":")
	k := 0
	if hasArg {
		var err error
		if k, err = strconv.Atoi(arg); err != nil || k < 1 {
			return nil, fmt.Errorf("topo: bad topology spec %q: want a positive integer after %q", spec, name+":")
		}
	}
	switch name {
	case "", "auto":
		return FromCluster(c), nil
	case "flat":
		bw, _ := intraFabric(c.Node)
		lat := IntraLatency
		links := 1
		if c.Nodes > 1 {
			bw = c.Node.Inter.PerGPUGBps * InterDerate
			lat = c.Node.Inter.BaseLatency + InterSwitchLatency
		}
		return New("flat", []Level{
			{Name: "gpu", Fanout: 1},
			{Name: "fabric", Fanout: c.TotalGPUs(), BWGBps: bw, Latency: lat, Links: links},
		})
	case "rail":
		t := FromCluster(c)
		levels := append([]Level(nil), t.Levels...)
		if c.Nodes > 1 {
			levels[len(levels)-1] = spineLevel(c, c.Node.GPUsPerNode)
		}
		return New("rail", levels)
	case "oversub":
		if !hasArg {
			return nil, fmt.Errorf("topo: spec %q needs a ratio (e.g. oversub:4)", spec)
		}
		t := FromCluster(c)
		levels := append([]Level(nil), t.Levels...)
		if c.Nodes > 1 {
			levels[len(levels)-1].BWGBps /= float64(k)
		}
		return New(spec, levels)
	case "pods":
		if !hasArg {
			return nil, fmt.Errorf("topo: spec %q needs a pod size (e.g. pods:2)", spec)
		}
		pods := (c.Nodes + k - 1) / k
		if pods <= 1 {
			return ByName("auto", c)
		}
		bw, links := intraFabric(c.Node)
		interBW := c.Node.Inter.PerGPUGBps * InterDerate
		interLat := c.Node.Inter.BaseLatency + InterSwitchLatency
		return New(spec, []Level{
			{Name: "gpu", Fanout: 1},
			{Name: "island", Fanout: c.Node.GPUsPerNode, BWGBps: bw, Latency: IntraLatency, Links: links},
			{Name: "pod", Fanout: k, BWGBps: interBW, Latency: interLat, Links: 1},
			{Name: "core", Fanout: pods, BWGBps: interBW / 2, Latency: 2 * interLat, Links: 1},
		})
	default:
		return nil, fmt.Errorf("topo: unknown topology spec %q (have auto, flat, rail, oversub:K, pods:K)", spec)
	}
}
