package topo

import (
	"reflect"
	"testing"

	"maya/internal/hardware"
)

func TestFromClusterShape(t *testing.T) {
	tp := FromCluster(hardware.DGXH100(4))
	if len(tp.Levels) != 3 {
		t.Fatalf("levels = %d, want 3", len(tp.Levels))
	}
	if tp.Leaves() != 32 {
		t.Fatalf("leaves = %d, want 32", tp.Leaves())
	}
	// Link domains: 4 island fabrics + 1 spine fabric + 4 island
	// uplinks.
	if tp.NumLinks() != 9 {
		t.Fatalf("links = %d, want 9", tp.NumLinks())
	}
	single := FromCluster(hardware.A40Node())
	if len(single.Levels) != 2 {
		t.Fatalf("single-node levels = %d, want 2", len(single.Levels))
	}
	if single.NumLinks() != 1 {
		t.Fatalf("single-node links = %d, want 1", single.NumLinks())
	}
}

func TestResolveFullMembership(t *testing.T) {
	tp := FromCluster(hardware.DGXH100(4))
	ranks := make([]int, 16)
	for i := range ranks {
		ranks[i] = i
	}
	p := tp.Resolve(ranks, 16)
	if want := []int{16, 2, 1}; !reflect.DeepEqual(p.Span, want) {
		t.Fatalf("span = %v, want %v", p.Span, want)
	}
	if p.Top() != 2 {
		t.Fatalf("top = %d, want 2", p.Top())
	}
	// Fabrics of islands 0,1 (ids 0,1), spine fabric (id 4), uplinks
	// of islands 0,1 (ids 5,6).
	if want := []int32{0, 1, 4, 5, 6}; !reflect.DeepEqual(p.Links, want) {
		t.Fatalf("links = %v, want %v", p.Links, want)
	}
}

func TestResolveIntraIsland(t *testing.T) {
	tp := FromCluster(hardware.DGXH100(4))
	p := tp.Resolve([]int{8, 9, 10, 11}, 4)
	if want := []int{4, 1, 1}; !reflect.DeepEqual(p.Span, want) {
		t.Fatalf("span = %v, want %v", p.Span, want)
	}
	if p.Top() != 1 {
		t.Fatalf("top = %d, want 1", p.Top())
	}
	// Only island 1's fabric: no spine traffic, no uplinks.
	if want := []int32{1}; !reflect.DeepEqual(p.Links, want) {
		t.Fatalf("links = %v, want %v", p.Links, want)
	}
}

func TestResolvePartialMembershipExtrapolates(t *testing.T) {
	tp := FromCluster(hardware.DGXH100(128))
	// Two of 128 declared ranks known, stride 512: the group really
	// spans all 128 islands at one GPU each.
	p := tp.Resolve([]int{0, 512}, 128)
	if p.Span[1] != 128 {
		t.Fatalf("island span = %d, want 128", p.Span[1])
	}
	if p.Span[2] != 1 {
		t.Fatalf("spine span = %d, want 1", p.Span[2])
	}
	// One known rank: stride defaults to leaves/size, recovering the
	// uniform inter-node layout.
	p1 := tp.Resolve([]int{0}, 128)
	if p1.Span[1] != 128 {
		t.Fatalf("single-known island span = %d, want 128", p1.Span[1])
	}
}

func TestResolvePodsFixture(t *testing.T) {
	tp, err := ByName("pods:2", hardware.DGXH100(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(tp.Levels) != 4 {
		t.Fatalf("levels = %d, want 4", len(tp.Levels))
	}
	// 8 island fabrics (0-7), 4 pod fabrics (8-11), 1 core fabric
	// (12), 8 island uplinks (13-20), 4 pod uplinks (21-24).
	if tp.NumLinks() != 25 {
		t.Fatalf("links = %d, want 25", tp.NumLinks())
	}

	// Non-contiguous set spanning two pods: ranks 0,1 (island 0),
	// 9 (island 1), 25 (island 3).
	p := tp.Resolve([]int{0, 1, 9, 25}, 4)
	if want := []int{4, 3, 2, 1}; !reflect.DeepEqual(p.Span, want) {
		t.Fatalf("span = %v, want %v", p.Span, want)
	}
	if p.Top() != 3 {
		t.Fatalf("top = %d, want 3", p.Top())
	}
	// island-0 fabric, pod-0 fabric, core fabric, uplinks of islands
	// 0,1,3 and pods 0,1 — ascending.
	if want := []int32{0, 8, 12, 13, 14, 16, 21, 22}; !reflect.DeepEqual(p.Links, want) {
		t.Fatalf("links = %v, want %v", p.Links, want)
	}

	// One GPU per pod: no island or pod fabrics, only the core plus
	// the uplinks along each branch.
	p2 := tp.Resolve([]int{0, 16, 32, 48}, 4)
	if want := []int{4, 4, 4, 1}; !reflect.DeepEqual(p2.Span, want) {
		t.Fatalf("span = %v, want %v", p2.Span, want)
	}
	if want := []int32{12, 13, 15, 17, 19, 21, 22, 23, 24}; !reflect.DeepEqual(p2.Links, want) {
		t.Fatalf("links = %v, want %v", p2.Links, want)
	}
}

func TestResolveSingletonAndEmpty(t *testing.T) {
	tp := FromCluster(hardware.DGXH100(2))
	p := tp.Resolve([]int{5}, 1)
	if p.Top() != 0 || len(p.Links) != 0 {
		t.Fatalf("singleton path = %+v", p)
	}
	p = tp.Resolve(nil, 0)
	if p.N != 0 || len(p.Links) != 0 {
		t.Fatalf("empty path = %+v", p)
	}
}

func TestByNameSpecs(t *testing.T) {
	c := hardware.DGXH100(8)
	for _, spec := range []string{"", "auto", "flat", "rail", "oversub:4", "pods:2"} {
		tp, err := ByName(spec, c)
		if err != nil {
			t.Fatalf("ByName(%q): %v", spec, err)
		}
		if tp.Leaves() < c.TotalGPUs() {
			t.Fatalf("ByName(%q): %d leaves < %d GPUs", spec, tp.Leaves(), c.TotalGPUs())
		}
	}
	auto, _ := ByName("auto", c)
	rail, _ := ByName("rail", c)
	if got, want := rail.Levels[2].Links, c.Node.GPUsPerNode; got != want {
		t.Fatalf("rail spine links = %d, want %d", got, want)
	}
	over, _ := ByName("oversub:4", c)
	if got, want := over.Levels[2].BWGBps, auto.Levels[2].BWGBps/4; got != want {
		t.Fatalf("oversub:4 spine BW = %g, want %g", got, want)
	}
	flat, _ := ByName("flat", c)
	if len(flat.Levels) != 2 {
		t.Fatalf("flat levels = %d, want 2", len(flat.Levels))
	}
	for _, bad := range []string{"mesh", "oversub", "oversub:x", "pods:0", "rail:2x"} {
		if _, err := ByName(bad, c); err == nil {
			t.Fatalf("ByName(%q) did not fail", bad)
		}
	}
	// pods larger than the cluster degenerates to auto.
	if tp, err := ByName("pods:16", c); err != nil || len(tp.Levels) != 3 {
		t.Fatalf("pods:16 = %v levels, err %v", tp, err)
	}
}

func TestNewValidates(t *testing.T) {
	leaf := Level{Name: "gpu", Fanout: 1}
	for _, bad := range [][]Level{
		{leaf},
		{{Name: "gpu", Fanout: 2}, {Name: "f", Fanout: 4, BWGBps: 1, Links: 1}},
		{leaf, {Name: "f", Fanout: 0, BWGBps: 1, Links: 1}},
		{leaf, {Name: "f", Fanout: 4, BWGBps: 0, Links: 1}},
		{leaf, {Name: "f", Fanout: 4, BWGBps: 1, Links: 0}},
	} {
		if _, err := New("bad", bad); err == nil {
			t.Fatalf("New(%v) did not fail", bad)
		}
	}
}
