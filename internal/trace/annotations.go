package trace

import (
	"sync"
	"time"
)

// Annotations is a duration overlay over an immutable Job: a flat
// per-(worker, op) sidecar that annotation passes write predicted or
// ground-truth durations into and the simulator reads through,
// leaving the job itself untouched. One captured job can feed any
// number of concurrent annotate+simulate passes, each with its own
// overlay, without deep-copying the trace.
//
// The overlay is indexed positionally: worker w is job.Workers[w] and
// an op is addressed by its per-worker sequence number, which for
// jobs built through Worker.Append equals its index in Ops. Entries
// start as the base ops' durations, so ops an annotation pass never
// touches (measured host delays, pre-annotated traces) read through
// unchanged.
type Annotations struct {
	// offsets[w] is worker w's first slot in durs; offsets has one
	// extra trailing entry so a worker's row is
	// durs[offsets[w]:offsets[w+1]].
	offsets []int
	durs    []time.Duration
}

// NewAnnotations builds an overlay for the job, seeded with the base
// op durations. It returns nil when the job is not positionally
// indexable (some op's Seq is not its index in Ops) — callers must
// fall back to deep-copy annotation in that case.
func NewAnnotations(job *Job) *Annotations {
	a := &Annotations{}
	if !a.Rebind(job) {
		return nil
	}
	return a
}

// Rebind points the overlay at a (possibly different) job, reusing
// grown storage, and re-seeds it with the job's base durations. It
// reports false — leaving the overlay unusable for this job — when
// any op's Seq is not its index in its worker's Ops, the invariant
// positional indexing rests on.
func (a *Annotations) Rebind(job *Job) bool {
	n := 0
	for _, w := range job.Workers {
		n += len(w.Ops)
	}
	if cap(a.offsets) < len(job.Workers)+1 {
		a.offsets = make([]int, len(job.Workers)+1)
	}
	a.offsets = a.offsets[:len(job.Workers)+1]
	if cap(a.durs) < n {
		a.durs = make([]time.Duration, n)
	}
	a.durs = a.durs[:n]

	off := 0
	for wi, w := range job.Workers {
		a.offsets[wi] = off
		row := a.durs[off : off+len(w.Ops)]
		for i := range w.Ops {
			if w.Ops[i].Seq != i {
				return false
			}
			row[i] = w.Ops[i].Dur
		}
		off += len(w.Ops)
	}
	a.offsets[len(job.Workers)] = off
	return true
}

// Snapshot returns a copy of the overlay's full duration table in
// row-major layout — exactly the table FillFrom accepts. Estimate
// plans are built this way: annotate once into an overlay, snapshot
// it, replay the snapshot into later overlays by copy.
func (a *Annotations) Snapshot() []time.Duration {
	return append([]time.Duration(nil), a.durs...)
}

// FillFrom overwrites the whole overlay from a precomputed duration
// table laid out row-major like the overlay itself (an estimate
// plan's table). It reports false — leaving the overlay unchanged —
// when the table's length does not match the overlay's.
func (a *Annotations) FillFrom(durs []time.Duration) bool {
	if len(durs) != len(a.durs) {
		return false
	}
	copy(a.durs, durs)
	return true
}

// Dur returns the overlay duration of op seq of worker w.
func (a *Annotations) Dur(w, seq int) time.Duration {
	return a.durs[a.offsets[w]+seq]
}

// Set writes the overlay duration of op seq of worker w.
func (a *Annotations) Set(w, seq int, d time.Duration) {
	a.durs[a.offsets[w]+seq] = d
}

var annPool sync.Pool

// AcquireAnnotations returns a pooled overlay bound to the job (nil
// when the job is not positionally indexable). Release it when the
// simulation that reads it has finished.
func AcquireAnnotations(job *Job) *Annotations {
	a, _ := annPool.Get().(*Annotations)
	if a == nil {
		a = &Annotations{}
	}
	if !a.Rebind(job) {
		annPool.Put(a)
		return nil
	}
	return a
}

// Release returns the overlay to the pool. The overlay must not be
// used after Release; a nil receiver is a no-op so fallback paths can
// release unconditionally.
func (a *Annotations) Release() {
	if a == nil {
		return
	}
	annPool.Put(a)
}
