package trace

import (
	"testing"
	"time"
)

func annJob(t *testing.T) *Job {
	t.Helper()
	w0 := &Worker{Rank: 0, World: 2}
	w0.Append(Op{Kind: KindHostDelay, Dur: 5 * time.Microsecond})
	w0.Append(Op{Kind: KindKernel, Name: "k"})
	w1 := &Worker{Rank: 1, World: 2}
	w1.Append(Op{Kind: KindKernel, Name: "k"})
	w1.Append(Op{Kind: KindMemcpy, MemKind: "HtoD", Bytes: 64})
	w1.Append(Op{Kind: KindHostDelay, Dur: 7 * time.Microsecond})
	job, err := NewJob([]*Worker{w0, w1})
	if err != nil {
		t.Fatal(err)
	}
	return job
}

func TestAnnotationsSeedAndSet(t *testing.T) {
	job := annJob(t)
	a := NewAnnotations(job)
	if a == nil {
		t.Fatal("NewAnnotations returned nil for a positional job")
	}
	// Base durations read through untouched.
	if got := a.Dur(0, 0); got != 5*time.Microsecond {
		t.Fatalf("seeded host delay = %v, want 5µs", got)
	}
	if got := a.Dur(1, 2); got != 7*time.Microsecond {
		t.Fatalf("seeded host delay = %v, want 7µs", got)
	}
	// Writes land per (worker, seq) without touching the job.
	a.Set(1, 0, 42*time.Microsecond)
	if got := a.Dur(1, 0); got != 42*time.Microsecond {
		t.Fatalf("Dur after Set = %v", got)
	}
	if job.Workers[1].Ops[0].Dur != 0 {
		t.Fatal("Set mutated the underlying job")
	}
	if got := a.Dur(0, 1); got != 0 {
		t.Fatalf("neighbor slot contaminated: %v", got)
	}
}

func TestAnnotationsRebindReusesAndReseeds(t *testing.T) {
	job := annJob(t)
	a := NewAnnotations(job)
	a.Set(0, 1, time.Millisecond)
	if !a.Rebind(job) {
		t.Fatal("Rebind failed on the same job")
	}
	if got := a.Dur(0, 1); got != 0 {
		t.Fatalf("Rebind did not re-seed: %v", got)
	}

	small, err := NewJob([]*Worker{{Rank: 0, World: 1, Ops: []Op{{Seq: 0, Kind: KindKernel}}}})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Rebind(small) {
		t.Fatal("Rebind failed on a smaller job")
	}
	if got := a.Dur(0, 0); got != 0 {
		t.Fatalf("rebound overlay = %v", got)
	}
}

func TestAnnotationsFillFrom(t *testing.T) {
	job := annJob(t)
	a := NewAnnotations(job)
	durs := []time.Duration{1, 2, 3, 4, 5} // row-major: w0 then w1
	if !a.FillFrom(durs) {
		t.Fatal("FillFrom rejected a matching table")
	}
	want := [][]time.Duration{{1, 2}, {3, 4, 5}}
	for wi, row := range want {
		for i, d := range row {
			if got := a.Dur(wi, i); got != d {
				t.Fatalf("Dur(%d,%d) = %v, want %v", wi, i, got, d)
			}
		}
	}
	// A mismatched table is rejected and the overlay untouched.
	if a.FillFrom(durs[:3]) {
		t.Fatal("FillFrom accepted a short table")
	}
	if got := a.Dur(1, 2); got != 5 {
		t.Fatalf("rejected FillFrom mutated the overlay: %v", got)
	}
	// The table is copied, not aliased.
	durs[0] = 99
	if got := a.Dur(0, 0); got != 1 {
		t.Fatalf("FillFrom aliased the source table: %v", got)
	}
}

func TestAnnotationsRejectNonPositionalJob(t *testing.T) {
	// Hand-built worker whose Seq numbers are not indexes.
	w := &Worker{Rank: 0, World: 1, Ops: []Op{{Seq: 3, Kind: KindKernel}}}
	job, err := NewJob([]*Worker{w})
	if err != nil {
		t.Fatal(err)
	}
	if NewAnnotations(job) != nil {
		t.Fatal("NewAnnotations accepted a non-positional job")
	}
	if AcquireAnnotations(job) != nil {
		t.Fatal("AcquireAnnotations accepted a non-positional job")
	}
}

func TestAcquireReleaseCycle(t *testing.T) {
	job := annJob(t)
	a := AcquireAnnotations(job)
	if a == nil {
		t.Fatal("AcquireAnnotations returned nil")
	}
	a.Set(0, 1, time.Second)
	a.Release()
	b := AcquireAnnotations(job)
	if b == nil {
		t.Fatal("second acquire returned nil")
	}
	defer b.Release()
	if got := b.Dur(0, 1); got != 0 {
		t.Fatalf("pooled overlay leaked a previous run's value: %v", got)
	}
	var nilAnn *Annotations
	nilAnn.Release() // must not panic: fallback paths release unconditionally
}
