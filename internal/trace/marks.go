package trace

// Well-known Mark labels the framework emits and the simulator's
// report interprets.
const (
	// MarkSetupEnd separates one-time initialization (weight
	// allocation, communicator setup) from the training loop.
	MarkSetupEnd = "setup_end"
	// MarkIterEnd is emitted after each training iteration, following
	// a device synchronization, so mark times are iteration
	// boundaries.
	MarkIterEnd = "iter_end"
)

// CollKey is the global matching identity of one collective call:
// all participants of the same call produce the same key. For
// point-to-point operations the key is directional (src, dst, per-pair
// sequence); for group collectives A/B are unused.
type CollKey struct {
	Comm uint64
	P2P  bool
	Src  int // P2P source rank within the communicator
	Dst  int // P2P destination rank within the communicator
	Seq  int
}

// CollKeyOf derives the matching key for a collective op. It panics
// if the op is not a collective; callers dispatch on Kind first.
func CollKeyOf(op *Op) CollKey {
	c := op.Coll
	switch c.Op {
	case "ncclSend":
		return CollKey{Comm: c.CommID, P2P: true, Src: c.Rank, Dst: c.Peer, Seq: c.Seq}
	case "ncclRecv":
		return CollKey{Comm: c.CommID, P2P: true, Src: c.Peer, Dst: c.Rank, Seq: c.Seq}
	default:
		return CollKey{Comm: c.CommID, Seq: c.Seq}
	}
}

// ExpandRanks completes a partially known communicator membership of
// the given size by extending the observed stride, defaulting to a
// world/size stride when only one member is known. Deduplicated jobs
// carry partial membership; Megatron process groups have uniform
// stride, so extension recovers the true topology.
func ExpandRanks(known []int, size, world int) []int {
	if size <= 0 {
		size = len(known)
	}
	if len(known) >= size {
		return known
	}
	if len(known) == 0 {
		return nil
	}
	stride := 1
	if len(known) >= 2 {
		stride = known[1] - known[0]
		if stride <= 0 {
			stride = 1
		}
	} else if size > 0 && world > size {
		stride = world / size
	}
	out := make([]int, size)
	for i := range out {
		r := known[0] + i*stride
		if world > 0 {
			r %= world
		}
		out[i] = r
	}
	return out
}

// Participation counts, for every collective call in the job, how
// many of the *present* workers will join it. When the collator
// simulates only deduplicated unique workers, collectives that span
// terminated duplicates must not wait for them; the simulator uses
// these counts instead of the communicator size.
func Participation(j *Job) map[CollKey]int {
	m := make(map[CollKey]int)
	for _, w := range j.Workers {
		for i := range w.Ops {
			op := &w.Ops[i]
			if op.Kind != KindCollective || op.Coll.Seq < 0 {
				continue
			}
			m[CollKeyOf(op)]++
		}
	}
	return m
}
