// Package trace defines Maya's execution-trace model: the sequence of
// device-API operations each worker performed during emulation, and
// the merged job-level view the simulator consumes.
//
// A trace is the contract between every stage of the pipeline. The
// emulator produces per-worker traces; the collator merges and
// deduplicates them; the estimator annotates kernel durations; the
// simulator replays the result. Traces serialize to JSON so they can
// be inspected, diffed and archived, matching the paper's example
// `{"events":[{"dev":"gpu0-stream0","op":"cublasSgemm_v2"}, ...]}`.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Kind discriminates trace operations.
type Kind uint8

// Operation kinds captured by the emulator.
const (
	KindKernel      Kind = iota // compute kernel launch
	KindMemcpy                  // cudaMemcpyAsync
	KindMemset                  // cudaMemsetAsync
	KindMalloc                  // cudaMalloc
	KindFree                    // cudaFree
	KindEventRecord             // cudaEventRecord
	KindStreamWait              // cudaStreamWaitEvent
	KindEventSync               // cudaEventSynchronize (host blocks)
	KindStreamSync              // cudaStreamSynchronize (host blocks)
	KindDeviceSync              // cudaDeviceSynchronize (host blocks)
	KindCollective              // NCCL collective or P2P operation
	KindHostDelay               // CPU time between API calls
	KindMark                    // iteration / phase boundary marker
)

var kindNames = [...]string{
	"kernel", "memcpy", "memset", "malloc", "free",
	"eventRecord", "streamWaitEvent", "eventSync", "streamSync",
	"deviceSync", "collective", "hostDelay", "mark",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON encodes kinds by name for readable traces.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON decodes a kind name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, n := range kindNames {
		if n == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("trace: unknown op kind %q", s)
}

// Collective carries the distributed-dependency metadata of a NCCL
// operation. CommID plus Seq is the global matching key the collator
// and the simulator's collective wait map use.
type Collective struct {
	Op     string `json:"op"`     // "ncclAllReduce", "ncclSend", ...
	CommID uint64 `json:"comm"`   // communicator identity (global)
	Seq    int    `json:"seq"`    // per-communicator call index
	NRanks int    `json:"nranks"` // participants in the communicator
	Rank   int    `json:"rank"`   // caller's rank within the communicator
	Peer   int    `json:"peer"`   // peer rank for send/recv, -1 otherwise
	Bytes  int64  `json:"bytes"`  // payload size
}

// Op is one traced device-API operation.
type Op struct {
	Seq    int    `json:"seq"`              // per-worker sequence number
	Kind   Kind   `json:"kind"`             // discriminator
	Stream int64  `json:"stream,omitempty"` // issuing stream handle
	Name   string `json:"name,omitempty"`   // kernel or API name

	// Kernel metadata captured by the emulator (shapes, not values).
	Dims  []int              `json:"dims,omitempty"`
	Bytes int64              `json:"bytes,omitempty"`
	FLOPs int64              `json:"flops,omitempty"`
	DType string             `json:"dtype,omitempty"`
	Extra map[string]float64 `json:"extra,omitempty"` // e.g. Triton instruction counts

	// Memory-op metadata.
	MemKind string `json:"memKind,omitempty"` // "HtoD", "DtoH", "DtoD", "HtoH"
	Ptr     uint64 `json:"ptr,omitempty"`

	// Event metadata. EventVer is the record-count of the event at the
	// time of the call; stream waits capture the version they saw.
	Event    int64 `json:"event,omitempty"`
	EventVer int   `json:"eventVer,omitempty"`

	Coll *Collective `json:"coll,omitempty"`

	// Dur is the operation's duration: host time for KindHostDelay
	// (measured during emulation), predicted device time after the
	// estimation phase, and ground-truth device time in silicon
	// traces. Zero for ops that are instantaneous in the model.
	Dur time.Duration `json:"dur,omitempty"`
}

// IsDeviceWork reports whether the op occupies a device stream for a
// non-zero duration and therefore needs a runtime estimate.
func (o *Op) IsDeviceWork() bool {
	switch o.Kind {
	case KindKernel, KindMemcpy, KindMemset, KindCollective:
		return true
	}
	return false
}

// SigString returns a stable signature of the op's identity used for
// worker deduplication: everything that defines the computation, but
// not measured host durations.
func (o *Op) SigString() string {
	switch o.Kind {
	case KindHostDelay:
		return "h"
	case KindCollective:
		c := o.Coll
		return fmt.Sprintf("c|%s|%d|%d|%d", c.Op, c.Bytes, c.NRanks, o.Stream)
	default:
		return fmt.Sprintf("%d|%s|%v|%d|%d|%s|%d", o.Kind, o.Name, o.Dims, o.Bytes, o.FLOPs, o.DType, o.Stream)
	}
}

// Worker is the trace of one emulated rank.
type Worker struct {
	Rank      int    `json:"rank"`
	Device    string `json:"device"` // GPU model name
	World     int    `json:"world"`  // total ranks in the job
	Ops       []Op   `json:"ops"`
	PeakBytes int64  `json:"peakBytes"`       // allocator high-water mark
	OOM       bool   `json:"oom,omitempty"`   // allocation exceeded capacity
	Dedup     int    `json:"dedup,omitempty"` // rank this trace was cloned from (when reconstructed)
}

// Append adds an op, assigning its per-worker sequence number.
func (w *Worker) Append(op Op) {
	op.Seq = len(w.Ops)
	w.Ops = append(w.Ops, op)
}

// Clone deep-copies the worker trace, remapping it to a new rank.
// Collective rank fields inside communicators are remapped by the
// caller (the collator knows the group layouts).
func (w *Worker) Clone(newRank int) *Worker {
	c := &Worker{
		Rank:      newRank,
		Device:    w.Device,
		World:     w.World,
		PeakBytes: w.PeakBytes,
		OOM:       w.OOM,
		Dedup:     w.Rank,
		Ops:       make([]Op, len(w.Ops)),
	}
	copy(c.Ops, w.Ops)
	for i := range c.Ops {
		if c.Ops[i].Coll != nil {
			cc := *c.Ops[i].Coll
			c.Ops[i].Coll = &cc
		}
		if c.Ops[i].Dims != nil {
			d := make([]int, len(c.Ops[i].Dims))
			copy(d, c.Ops[i].Dims)
			c.Ops[i].Dims = d
		}
		if c.Ops[i].Extra != nil {
			m := make(map[string]float64, len(c.Ops[i].Extra))
			for k, v := range c.Ops[i].Extra {
				m[k] = v
			}
			c.Ops[i].Extra = m
		}
	}
	return c
}

// Stats summarizes a worker trace.
type Stats struct {
	Ops         int
	Kernels     int
	Collectives int
	Memcpys     int
	Syncs       int
	HostTime    time.Duration
	ByName      map[string]int
}

// Stats computes summary statistics over the trace.
func (w *Worker) Stats() Stats {
	s := Stats{ByName: make(map[string]int)}
	for i := range w.Ops {
		op := &w.Ops[i]
		s.Ops++
		switch op.Kind {
		case KindKernel:
			s.Kernels++
			s.ByName[op.Name]++
		case KindCollective:
			s.Collectives++
			s.ByName[op.Coll.Op]++
		case KindMemcpy:
			s.Memcpys++
			s.ByName["Memcpy"+op.MemKind]++
		case KindEventSync, KindStreamSync, KindDeviceSync, KindStreamWait:
			s.Syncs++
		case KindHostDelay:
			s.HostTime += op.Dur
		}
	}
	return s
}

// Job is the collated, job-level trace: one worker entry per rank.
type Job struct {
	Workers []*Worker `json:"workers"`
	// UniqueRanks lists the ranks that were actually emulated when
	// deduplication reconstructed the rest; empty means all were.
	UniqueRanks []int `json:"uniqueRanks,omitempty"`
}

// NewJob builds a job trace, sorting workers by rank. Ranks need not
// be dense — deduplicated and selectively launched jobs carry only
// their unique workers — but they must not repeat.
func NewJob(workers []*Worker) (*Job, error) {
	sort.Slice(workers, func(i, j int) bool { return workers[i].Rank < workers[j].Rank })
	for i := 1; i < len(workers); i++ {
		if workers[i].Rank == workers[i-1].Rank {
			return nil, fmt.Errorf("trace: duplicate worker rank %d", workers[i].Rank)
		}
	}
	return &Job{Workers: workers}, nil
}

// NRanks returns the number of workers in the job.
func (j *Job) NRanks() int { return len(j.Workers) }

// OOM reports whether any worker exceeded device memory.
func (j *Job) OOM() bool {
	for _, w := range j.Workers {
		if w.OOM {
			return true
		}
	}
	return false
}

// PeakBytes returns the maximum allocator high-water mark across
// workers.
func (j *Job) PeakBytes() int64 {
	var p int64
	for _, w := range j.Workers {
		if w.PeakBytes > p {
			p = w.PeakBytes
		}
	}
	return p
}

// Clone deep-copies the job so one copy can be annotated with
// predictions while another holds ground truth.
func (j *Job) Clone() *Job {
	c := &Job{UniqueRanks: append([]int(nil), j.UniqueRanks...)}
	c.Workers = make([]*Worker, len(j.Workers))
	for i, w := range j.Workers {
		cw := w.Clone(w.Rank)
		cw.Dedup = w.Dedup
		c.Workers[i] = cw
	}
	return c
}

// WriteJSON streams the job trace as indented JSON.
func (j *Job) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(j)
}

// ReadJSON parses a job trace produced by WriteJSON.
func ReadJSON(r io.Reader) (*Job, error) {
	var j Job
	if err := json.NewDecoder(r).Decode(&j); err != nil {
		return nil, fmt.Errorf("trace: decoding job: %w", err)
	}
	return &j, nil
}
