package trace

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func sampleWorker(rank int) *Worker {
	w := &Worker{Rank: rank, World: 4, Device: "H100"}
	w.Append(Op{Kind: KindHostDelay, Dur: 5 * time.Microsecond})
	w.Append(Op{Kind: KindKernel, Name: "cublasGemmEx", Stream: 0,
		Dims: []int{1, 128, 128, 128}, FLOPs: 2 * 128 * 128 * 128, Bytes: 3 * 2 * 128 * 128, DType: "bf16"})
	w.Append(Op{Kind: KindCollective, Name: "ncclAllReduce", Stream: 1, Bytes: 1 << 20,
		Coll: &Collective{Op: "ncclAllReduce", CommID: 0xBEEF, Seq: 0, NRanks: 4, Rank: rank, Peer: -1, Bytes: 1 << 20}})
	w.Append(Op{Kind: KindEventRecord, Stream: 1, Event: 3, EventVer: 1})
	w.Append(Op{Kind: KindMark, Name: MarkIterEnd})
	return w
}

func TestAppendAssignsSequence(t *testing.T) {
	w := sampleWorker(0)
	for i, op := range w.Ops {
		if op.Seq != i {
			t.Fatalf("op %d has seq %d", i, op.Seq)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	j, err := NewJob([]*Worker{sampleWorker(0), sampleWorker(1)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := j.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(j, back) {
		t.Fatalf("round trip mismatch:\n%+v\nvs\n%+v", j.Workers[0].Ops[1], back.Workers[0].Ops[1])
	}
}

func TestKindJSONNames(t *testing.T) {
	var k Kind
	if err := k.UnmarshalJSON([]byte(`"collective"`)); err != nil {
		t.Fatal(err)
	}
	if k != KindCollective {
		t.Fatalf("got %v", k)
	}
	if err := k.UnmarshalJSON([]byte(`"nonsense"`)); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func TestNewJobRejectsDuplicateRanks(t *testing.T) {
	_, err := NewJob([]*Worker{sampleWorker(1), sampleWorker(1)})
	if err == nil {
		t.Fatal("expected duplicate-rank error")
	}
}

func TestNewJobAllowsSparseRanks(t *testing.T) {
	j, err := NewJob([]*Worker{sampleWorker(4), sampleWorker(0)})
	if err != nil {
		t.Fatal(err)
	}
	if j.Workers[0].Rank != 0 || j.Workers[1].Rank != 4 {
		t.Fatalf("workers not sorted: %d, %d", j.Workers[0].Rank, j.Workers[1].Rank)
	}
}

func TestCloneIsDeep(t *testing.T) {
	w := sampleWorker(0)
	c := w.Clone(2)
	if c.Rank != 2 || c.Dedup != 0 {
		t.Fatalf("clone rank/dedup = %d/%d", c.Rank, c.Dedup)
	}
	c.Ops[1].Dims[0] = 999
	c.Ops[2].Coll.Bytes = 7
	if w.Ops[1].Dims[0] == 999 {
		t.Fatal("clone shares Dims slice")
	}
	if w.Ops[2].Coll.Bytes == 7 {
		t.Fatal("clone shares Collective pointer")
	}
}

func TestJobCloneIndependent(t *testing.T) {
	j, err := NewJob([]*Worker{sampleWorker(0)})
	if err != nil {
		t.Fatal(err)
	}
	c := j.Clone()
	c.Workers[0].Ops[1].Dur = time.Hour
	if j.Workers[0].Ops[1].Dur == time.Hour {
		t.Fatal("job clone shares ops")
	}
}

func TestStats(t *testing.T) {
	st := sampleWorker(0).Stats()
	if st.Kernels != 1 || st.Collectives != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HostTime != 5*time.Microsecond {
		t.Fatalf("host time = %v", st.HostTime)
	}
	if st.ByName["cublasGemmEx"] != 1 {
		t.Fatalf("byName = %v", st.ByName)
	}
}

func TestCollKeyMatchesSendRecvPairs(t *testing.T) {
	send := &Op{Kind: KindCollective, Coll: &Collective{Op: "ncclSend", CommID: 9, Seq: 3, NRanks: 4, Rank: 1, Peer: 2}}
	recv := &Op{Kind: KindCollective, Coll: &Collective{Op: "ncclRecv", CommID: 9, Seq: 3, NRanks: 4, Rank: 2, Peer: 1}}
	if CollKeyOf(send) != CollKeyOf(recv) {
		t.Fatalf("send/recv keys differ: %+v vs %+v", CollKeyOf(send), CollKeyOf(recv))
	}
	reversed := &Op{Kind: KindCollective, Coll: &Collective{Op: "ncclSend", CommID: 9, Seq: 3, NRanks: 4, Rank: 2, Peer: 1}}
	if CollKeyOf(send) == CollKeyOf(reversed) {
		t.Fatal("opposite-direction sends must not match")
	}
}

func TestParticipationCounts(t *testing.T) {
	j, err := NewJob([]*Worker{sampleWorker(0), sampleWorker(1), sampleWorker(2)})
	if err != nil {
		t.Fatal(err)
	}
	parts := Participation(j)
	key := CollKey{Comm: 0xBEEF, Seq: 0}
	if parts[key] != 3 {
		t.Fatalf("participation = %d, want 3 (present workers)", parts[key])
	}
}

func TestExpandRanksProperties(t *testing.T) {
	// Property: the expansion always returns `size` ranks, starts at
	// the first known rank, and preserves a uniform stride.
	if err := quick.Check(func(firstRaw, strideRaw, sizeRaw uint8) bool {
		size := int(sizeRaw%8) + 2
		stride := int(strideRaw%4) + 1
		world := size * stride * 2
		first := int(firstRaw) % stride
		known := []int{first, first + stride}
		out := ExpandRanks(known, size, world)
		if len(out) != size {
			return false
		}
		for i := 1; i < len(out); i++ {
			if (out[i]-out[i-1]+world)%world != stride {
				return false
			}
		}
		return out[0] == first
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSigStringIgnoresCommIdentity(t *testing.T) {
	a := &Op{Kind: KindCollective, Coll: &Collective{Op: "ncclAllReduce", CommID: 1, Seq: 5, NRanks: 4, Rank: 0, Bytes: 100}}
	b := &Op{Kind: KindCollective, Coll: &Collective{Op: "ncclAllReduce", CommID: 2, Seq: 9, NRanks: 4, Rank: 3, Bytes: 100}}
	if a.SigString() != b.SigString() {
		t.Fatal("duplicate workers on different communicators must hash equal")
	}
	c := &Op{Kind: KindCollective, Coll: &Collective{Op: "ncclAllReduce", CommID: 1, Seq: 5, NRanks: 8, Rank: 0, Bytes: 100}}
	if a.SigString() == c.SigString() {
		t.Fatal("different group sizes must hash differently")
	}
}
