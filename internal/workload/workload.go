// Package workload defines the contract between training programs
// and Maya's pipeline: a Workload is ordinary code that drives the
// device API for each rank. The same Run method executes under the
// transparent emulator (prediction), the profiler and the synthetic
// silicon (measurement) — transparency means the workload cannot
// tell the difference.
package workload

import "maya/internal/cuda"

// Workload is one distributed training job.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// World returns the number of ranks (devices) in the job.
	World() int
	// Run executes the rank's training program against the device.
	// It is called once per rank, in any order, possibly concurrently
	// with other ranks.
	Run(rank int, dev cuda.Device) error
}

// SelectiveLauncher is implemented by workloads that can name, ahead
// of execution, a representative subset of ranks whose traces cover
// all distinct behaviors — Maya's hyperscale optimization (§7.4).
// This requires explicit workload knowledge (e.g. the Megatron rank
// layout); workloads without it fall back to dynamic hash-based
// deduplication.
type SelectiveLauncher interface {
	Workload
	// UniqueRanks returns representative ranks in ascending order.
	UniqueRanks() []int
}

// Prober is implemented by workloads that can produce a cheap
// single-iteration variant of themselves. Dynamic deduplication
// emulates the probe on every rank to discover duplicate groups, then
// runs the full workload only on unique representatives — the paper's
// "profile all workers for one iteration, terminate redundant ones"
// flow.
type Prober interface {
	Workload
	// Probe returns a one-iteration variant of the workload.
	Probe() Workload
}

// GroupAware is implemented by workloads that can enumerate their
// communicator groups from configuration alone — the explicit
// workload knowledge Maya's selective launch relies on to recover
// collective topology without emulating every member (§7.4).
type GroupAware interface {
	Workload
	// CommGroups maps every communicator's unique ID to the global
	// ranks of its members, ordered by communicator rank.
	CommGroups() map[uint64][]int
}

// Func adapts a function to a single-purpose Workload.
type Func struct {
	JobName string
	Ranks   int
	Body    func(rank int, dev cuda.Device) error
}

// Name implements Workload.
func (f Func) Name() string { return f.JobName }

// World implements Workload.
func (f Func) World() int { return f.Ranks }

// Run implements Workload.
func (f Func) Run(rank int, dev cuda.Device) error { return f.Body(rank, dev) }
