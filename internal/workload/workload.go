// Package workload defines the contract between training programs
// and Maya's pipeline: a Workload is ordinary code that drives the
// device API for each rank. The same Run method executes under the
// transparent emulator (prediction), the profiler and the synthetic
// silicon (measurement) — transparency means the workload cannot
// tell the difference.
package workload

import "maya/internal/cuda"

// Workload is one distributed training job.
type Workload interface {
	// Name identifies the workload in reports.
	Name() string
	// World returns the number of ranks (devices) in the job.
	World() int
	// Run executes the rank's training program against the device.
	// It is called once per rank, in any order, possibly concurrently
	// with other ranks.
	Run(rank int, dev cuda.Device) error
}

// SelectiveLauncher is implemented by workloads that can name, ahead
// of execution, a representative subset of ranks whose traces cover
// all distinct behaviors — Maya's hyperscale optimization (§7.4).
// This requires explicit workload knowledge (e.g. the Megatron rank
// layout); workloads without it fall back to dynamic hash-based
// deduplication.
type SelectiveLauncher interface {
	Workload
	// UniqueRanks returns representative ranks in ascending order.
	UniqueRanks() []int
}

// Prober is implemented by workloads that can produce a cheap
// single-iteration variant of themselves. Dynamic deduplication
// emulates the probe on every rank to discover duplicate groups, then
// runs the full workload only on unique representatives — the paper's
// "profile all workers for one iteration, terminate redundant ones"
// flow.
type Prober interface {
	Workload
	// Probe returns a one-iteration variant of the workload.
	Probe() Workload
}

// ClassHinter is implemented by workloads that can predict, from
// their parallel topology alone, which ranks are equivalent — i.e.
// will produce identical operation streams under emulation. Unlike
// SelectiveLauncher (whose claim is trusted outright, §7.4), class
// hints are verified: the pipeline emulates one representative per
// class plus a small deterministic sample of other members, checks
// the samples' trace signatures against their representatives, and
// falls back to the full O(world) probe on any mismatch. Capture
// therefore scales with the number of distinct behaviors instead of
// the world size, without giving up dynamic dedup's safety net.
type ClassHinter interface {
	Workload
	// RankClasses partitions [0, World()) into predicted equivalence
	// classes: every rank appears in exactly one class, each class is
	// sorted ascending, and the classes are ordered by their first
	// rank. A malformed partition disables the hint (the pipeline
	// falls back to dynamic dedup).
	RankClasses() [][]int
}

// Fingerprinter is implemented by workloads whose captured structure
// is a pure function of a describable configuration, enabling capture
// caching across calls: two workloads with equal fingerprints produce
// identical traces when emulated on the same cluster with the same
// capture options.
type Fingerprinter interface {
	Workload
	// Fingerprint returns a canonical description of everything that
	// shapes the workload's emulated trace (model geometry, degrees,
	// schedule knobs, precision, iteration count). It must change
	// whenever the captured trace would.
	Fingerprint() string
}

// GroupAware is implemented by workloads that can enumerate their
// communicator groups from configuration alone — the explicit
// workload knowledge Maya's selective launch relies on to recover
// collective topology without emulating every member (§7.4).
type GroupAware interface {
	Workload
	// CommGroups maps every communicator's unique ID to the global
	// ranks of its members, ordered by communicator rank.
	CommGroups() map[uint64][]int
}

// Func adapts a function to a single-purpose Workload.
type Func struct {
	JobName string
	Ranks   int
	Body    func(rank int, dev cuda.Device) error
}

// Name implements Workload.
func (f Func) Name() string { return f.JobName }

// World implements Workload.
func (f Func) World() int { return f.Ranks }

// Run implements Workload.
func (f Func) Run(rank int, dev cuda.Device) error { return f.Body(rank, dev) }
