package workload

import (
	"errors"
	"testing"

	"maya/internal/cuda"
)

type fakeDevice struct {
	cuda.Device // nil embedding: only Mark is called
	marks       []string
}

func (f *fakeDevice) Mark(label string) error {
	f.marks = append(f.marks, label)
	return nil
}

func TestFuncAdapter(t *testing.T) {
	called := -1
	w := Func{
		JobName: "demo",
		Ranks:   4,
		Body: func(rank int, dev cuda.Device) error {
			called = rank
			return dev.Mark("ran")
		},
	}
	if w.Name() != "demo" || w.World() != 4 {
		t.Fatalf("adapter metadata: %s/%d", w.Name(), w.World())
	}
	d := &fakeDevice{}
	if err := w.Run(2, d); err != nil {
		t.Fatal(err)
	}
	if called != 2 || len(d.marks) != 1 {
		t.Fatalf("body not invoked correctly: rank %d marks %v", called, d.marks)
	}
}

func TestFuncErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	w := Func{JobName: "e", Ranks: 1, Body: func(int, cuda.Device) error { return boom }}
	if err := w.Run(0, nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}
