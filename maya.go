// Package maya is a performance-modeling system for distributed
// deep-learning training: it predicts the end-to-end runtime, memory
// footprint and hardware utilization of unmodified training workloads
// on GPU clusters the user does not have — by transparently emulating
// the accelerator device API underneath the training program, then
// simulating the captured execution trace.
//
// This is the public facade over the full pipeline (device emulation,
// trace collation, learned kernel-runtime estimation, discrete-event
// cluster simulation) plus Maya-Search, the configuration-search
// system built on top. See DESIGN.md for the architecture and
// EXPERIMENTS.md for the reproduced evaluation.
//
// Quickstart:
//
//	cluster := maya.ClusterByName("32xH100")
//	pred, _ := maya.NewPredictor(cluster, maya.ProfileLLM)
//	w, _ := maya.NewMegatron(maya.MegatronConfig{ ... })
//	report, _ := pred.Predict(w, flops, maya.BF16)
//	fmt.Println(report.IterTime, report.MFU)
package maya

import (
	"fmt"

	"maya/internal/core"
	"maya/internal/estimator"
	"maya/internal/framework"
	"maya/internal/hardware"
	"maya/internal/models"
	"maya/internal/netsim"
	"maya/internal/silicon"
	"maya/internal/workload"
)

// Re-exported core types. These aliases are the stable public API;
// the internal packages they point at are implementation detail.
type (
	// Cluster describes the target hardware.
	Cluster = hardware.Cluster
	// GPU describes one accelerator.
	GPU = hardware.GPU
	// DType is a numeric element type.
	DType = hardware.DType
	// Workload is an unmodified training program.
	Workload = workload.Workload
	// Report is a prediction or measurement result.
	Report = core.Report
	// StageTimings breaks down pipeline wall-clock per stage.
	StageTimings = core.StageTimings
	// MegatronConfig is a Megatron-LM style training recipe.
	MegatronConfig = framework.MegatronConfig
	// DataParallelConfig is a DDP/ZeRO/FSDP training job.
	DataParallelConfig = framework.DataParallelConfig
	// Transformer is a transformer architecture description.
	Transformer = models.Transformer
	// CNN is a convolutional architecture description.
	CNN = models.CNN
	// DPStrategy selects the data-parallel training stack.
	DPStrategy = framework.DPStrategy
)

// Data types.
const (
	FP32 = hardware.FP32
	FP16 = hardware.FP16
	BF16 = hardware.BF16
)

// Data-parallel strategies.
const (
	DDP   = framework.DDP
	ZeRO1 = framework.ZeRO1
	ZeRO2 = framework.ZeRO2
	ZeRO3 = framework.ZeRO3
	FSDP  = framework.FSDP
)

// ProfileKind selects which kernel families the predictor's
// estimators are trained on.
type ProfileKind = estimator.ProfileKind

// Profile kinds.
const (
	ProfileLLM    = estimator.ProfileLLM
	ProfileVision = estimator.ProfileVision
	ProfileAll    = estimator.ProfileAll
)

// Cluster constructors.
var (
	// DGXH100 builds an H100 cluster with the given node count.
	DGXH100 = hardware.DGXH100
	// DGXV100 builds a V100 cluster with the given node count.
	DGXV100 = hardware.DGXV100
	// A40Node builds the single 8xA40 node.
	A40Node = hardware.A40Node
)

// ClusterByName parses a cluster spec such as "64xH100".
func ClusterByName(spec string) (Cluster, error) { return hardware.ByName(spec) }

// NewMegatron builds a Megatron-LM style workload from a recipe.
func NewMegatron(cfg MegatronConfig) (Workload, error) { return framework.NewMegatron(cfg) }

// NewDataParallel builds a DDP/ZeRO/FSDP workload.
func NewDataParallel(cfg DataParallelConfig) (Workload, error) {
	return framework.NewDataParallel(cfg)
}

// Model presets.
var (
	GPT3_1_3B   = models.GPT3_1_3B
	GPT3_2_7B   = models.GPT3_2_7B
	GPT3_18_4B  = models.GPT3_18_4B
	GPT3_145_6B = models.GPT3_145_6B
	Llama2_7B   = models.Llama2_7B
	BERTLarge   = models.BERTLarge
	ResNet152   = models.ResNet152
)

// Predictor predicts workload performance on one cluster. It is safe
// for concurrent use.
type Predictor struct {
	pipeline *core.Pipeline
	oracle   *silicon.Oracle
}

// PredictorOption customizes construction.
type PredictorOption func(*core.Options)

// WithoutDedup disables worker deduplication (every rank is emulated
// and simulated).
func WithoutDedup() PredictorOption {
	return func(o *core.Options) { o.NoDedup = true }
}

// WithValidation enables cross-worker collective consistency checks.
func WithValidation() PredictorOption {
	return func(o *core.Options) { o.Validate = true }
}

// NewPredictor trains (or reuses cached) kernel estimators for the
// cluster and returns a ready predictor. The first call per cluster
// profiles microbenchmarks and trains the random forests; subsequent
// calls reuse them.
func NewPredictor(cluster Cluster, kind ProfileKind, opts ...PredictorOption) (*Predictor, error) {
	if err := cluster.Validate(); err != nil {
		return nil, err
	}
	oracle := core.DefaultOracle(cluster)
	suite, _, err := core.SuiteFor(cluster, oracle, kind)
	if err != nil {
		return nil, fmt.Errorf("maya: training estimators: %w", err)
	}
	o := core.Options{SelectiveLaunch: true}
	for _, opt := range opts {
		opt(&o)
	}
	return &Predictor{
		pipeline: &core.Pipeline{Cluster: cluster, Suite: suite, Opts: o},
		oracle:   oracle,
	}, nil
}

// WithNetworkSimulator returns a predictor whose collective times
// come from the built-in hierarchical network simulator instead of
// profiled curves — required beyond profiled cluster scales.
func (p *Predictor) WithNetworkSimulator() *Predictor {
	return &Predictor{
		pipeline: &core.Pipeline{
			Cluster: p.pipeline.Cluster,
			Suite:   p.pipeline.Suite.WithCollectiveEstimator(netsim.New(p.pipeline.Cluster)),
			Opts:    p.pipeline.Opts,
		},
		oracle: p.oracle,
	}
}

// Predict runs the full Maya pipeline for the workload. modelFLOPs is
// the per-iteration model FLOP count used for MFU (0 skips MFU);
// dtype is the training precision whose peak throughput MFU is
// normalized by.
func (p *Predictor) Predict(w Workload, modelFLOPs float64, dtype DType) (*Report, error) {
	return p.pipeline.Predict(w, modelFLOPs, dtype)
}

// MeasureActual times the workload on the bundled synthetic silicon —
// the stand-in for deploying on real hardware that all accuracy
// experiments compare against. On a real deployment this would be
// replaced by running the job.
func (p *Predictor) MeasureActual(w Workload, modelFLOPs float64, dtype DType) (*Report, error) {
	return p.pipeline.MeasureActual(w, p.oracle, modelFLOPs, dtype)
}

// Cluster returns the predictor's target cluster.
func (p *Predictor) Cluster() Cluster { return p.pipeline.Cluster }
