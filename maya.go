// Package maya is a performance-modeling system for distributed
// deep-learning training: it predicts the end-to-end runtime, memory
// footprint and hardware utilization of unmodified training workloads
// on GPU clusters the user does not have — by transparently emulating
// the accelerator device API underneath the training program, then
// simulating the captured execution trace.
//
// This is the public facade over the full pipeline (device emulation,
// trace collation, learned kernel-runtime estimation, discrete-event
// cluster simulation) plus Maya-Search, the configuration-search
// system built on top. See DESIGN.md for the architecture, the
// context/request API contract, the estimator-cache lifecycle and the
// reproduced-experiment index.
//
// Every entry point takes a context.Context and observes
// cancellation through all pipeline stages, so long emulations and
// searches can be deadlined or aborted. Expensive estimator training
// is memoized in an EstimatorCache; predictors resolve their suite
// lazily on first use, or eagerly via EstimatorCache.Warm.
//
// Quickstart:
//
//	cluster, _ := maya.ClusterByName("32xH100")
//	pred, _ := maya.NewPredictor(cluster, maya.ProfileLLM)
//	w, _ := maya.NewMegatron(maya.MegatronConfig{ ... })
//	report, _ := pred.Predict(ctx, w, maya.WithModelFLOPs(flops), maya.WithDType(maya.BF16))
//	fmt.Println(report.IterTime, report.MFU)
package maya

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"maya/internal/core"
	"maya/internal/estimator"
	"maya/internal/faults"
	"maya/internal/framework"
	"maya/internal/hardware"
	"maya/internal/models"
	"maya/internal/netsim"
	"maya/internal/silicon"
	"maya/internal/sim"
	"maya/internal/topo"
	"maya/internal/workload"
)

// Re-exported core types. These aliases are the stable public API;
// the internal packages they point at are implementation detail.
type (
	// Cluster describes the target hardware.
	Cluster = hardware.Cluster
	// GPU describes one accelerator.
	GPU = hardware.GPU
	// DType is a numeric element type.
	DType = hardware.DType
	// Workload is an unmodified training program.
	Workload = workload.Workload
	// Report is a prediction or measurement result.
	Report = core.Report
	// StageTimings breaks down pipeline wall-clock per stage.
	StageTimings = core.StageTimings
	// StallProfile is the per-worker stall attribution of one
	// simulated run (see WithStallBreakdown).
	StallProfile = core.StallProfile
	// WorkerStall is one worker's stall attribution: event waits,
	// collective straggler waits, host-bound stretches and pipeline
	// bubbles.
	WorkerStall = core.WorkerStall
	// Timeline records a simulated run as a Chrome-trace timeline
	// (see WithTimeline and NewTimeline).
	Timeline = sim.Timeline
	// CacheStats is a snapshot of EstimatorCache accounting.
	CacheStats = core.CacheStats
	// MegatronConfig is a Megatron-LM style training recipe.
	MegatronConfig = framework.MegatronConfig
	// DataParallelConfig is a DDP/ZeRO/FSDP training job.
	DataParallelConfig = framework.DataParallelConfig
	// Transformer is a transformer architecture description.
	Transformer = models.Transformer
	// CNN is a convolutional architecture description.
	CNN = models.CNN
	// DPStrategy selects the data-parallel training stack.
	DPStrategy = framework.DPStrategy
)

// Data types.
const (
	FP32 = hardware.FP32
	FP16 = hardware.FP16
	BF16 = hardware.BF16
)

// Data-parallel strategies.
const (
	DDP   = framework.DDP
	ZeRO1 = framework.ZeRO1
	ZeRO2 = framework.ZeRO2
	ZeRO3 = framework.ZeRO3
	FSDP  = framework.FSDP
)

// ProfileKind selects which kernel families the predictor's
// estimators are trained on.
type ProfileKind = estimator.ProfileKind

// Profile kinds.
const (
	ProfileLLM    = estimator.ProfileLLM
	ProfileVision = estimator.ProfileVision
	ProfileAll    = estimator.ProfileAll
)

// Cluster constructors.
var (
	// DGXH100 builds an H100 cluster with the given node count.
	DGXH100 = hardware.DGXH100
	// DGXV100 builds a V100 cluster with the given node count.
	DGXV100 = hardware.DGXV100
	// A40Node builds the single 8xA40 node.
	A40Node = hardware.A40Node
)

// ClusterByName parses a cluster spec such as "64xH100".
func ClusterByName(spec string) (Cluster, error) { return hardware.ByName(spec) }

// NewMegatron builds a Megatron-LM style workload from a recipe.
func NewMegatron(cfg MegatronConfig) (Workload, error) { return framework.NewMegatron(cfg) }

// NewDataParallel builds a DDP/ZeRO/FSDP workload.
func NewDataParallel(cfg DataParallelConfig) (Workload, error) {
	return framework.NewDataParallel(cfg)
}

// Model presets.
var (
	GPT3_1_3B   = models.GPT3_1_3B
	GPT3_2_7B   = models.GPT3_2_7B
	GPT3_18_4B  = models.GPT3_18_4B
	GPT3_145_6B = models.GPT3_145_6B
	Llama2_7B   = models.Llama2_7B
	BERTLarge   = models.BERTLarge
	ResNet152   = models.ResNet152
)

// Predictor predicts workload performance on one cluster. It is safe
// for concurrent use: the trained estimator suite is shared across
// calls and goroutines.
//
// Construction is cheap. The suite is resolved from the predictor's
// EstimatorCache on the first call that needs it (training on a cache
// miss); use EstimatorCache.Warm to pay that cost eagerly. Calls that
// annotate with the ground-truth oracle (MeasureActual, or Predict
// under WithOracleAnnotation) never require a trained suite.
type Predictor struct {
	cluster    hardware.Cluster
	kind       ProfileKind
	opts       core.Options
	cache      *EstimatorCache
	captures   *CaptureCache
	netsim     bool
	congestion bool
	netModel   *netsim.Model
	oracle     *silicon.Oracle

	// netsimSuites memoizes the netsim-wrapped view of each resolved
	// base suite. Wrapping allocates a new *Suite, and capture-
	// attached estimate plans are keyed by suite pointer — without
	// memoization every netsim call would mint a fresh suite and
	// rebuild its plans from scratch.
	netsimMu    sync.Mutex
	netsimBase  *estimator.Suite
	netsimSuite *estimator.Suite
}

// predictorConfig collects NewPredictor options.
type predictorConfig struct {
	opts       core.Options
	cache      *EstimatorCache
	captures   *CaptureCache
	netsim     bool
	congestion bool
	topology   string
	ckptEvery  int
	ckptSet    bool
}

// PredictorOption customizes Predictor construction. Options that
// also make sense per call (WithNetSim, WithSeed) satisfy both
// PredictorOption and PredictOption.
type PredictorOption interface {
	applyPredictor(*predictorConfig)
}

// predictorOption adapts a plain function to PredictorOption.
type predictorOption func(*predictorConfig)

func (f predictorOption) applyPredictor(c *predictorConfig) { f(c) }

// WithoutDedup disables worker deduplication (every rank is emulated
// and simulated).
func WithoutDedup() PredictorOption {
	return predictorOption(func(c *predictorConfig) { c.opts.NoDedup = true })
}

// WithValidation enables cross-worker collective consistency checks
// on every call of the predictor.
func WithValidation() PredictorOption {
	return predictorOption(func(c *predictorConfig) { c.opts.Validate = true })
}

// WithEstimatorCache injects the cache the predictor resolves its
// estimator suite from. Predictors without it share
// DefaultEstimatorCache.
func WithEstimatorCache(cache *EstimatorCache) PredictorOption {
	return predictorOption(func(c *predictorConfig) { c.cache = cache })
}

// WithTopology selects the network fabric the predictor models the
// cluster with, as a declarative spec: "auto" (or "") derives the
// canonical hierarchy from the cluster hardware, "flat" collapses it
// to one fabric level, "rail" gives the spine one rail per local GPU,
// "oversub:K" divides spine bandwidth by K, and "pods:K" inserts a
// pod tier of K islands under an oversubscribed core. The spec is
// validated at NewPredictor. It shapes netsim collective estimates
// (WithNetSim) and congestion-aware simulation (WithCongestion), and
// is stamped into captures as provenance.
func WithTopology(spec string) PredictorOption {
	return predictorOption(func(c *predictorConfig) { c.topology = spec })
}

// Option is accepted both at predictor construction and per call:
// construction sets the predictor's default, a per-call use overrides
// it for that call only.
type Option interface {
	PredictorOption
	PredictOption
}

// dualOption implements Option.
type dualOption struct {
	ctor func(*predictorConfig)
	call func(*predictSettings)
}

func (d dualOption) applyPredictor(c *predictorConfig) { d.ctor(c) }
func (d dualOption) applyPredict(s *predictSettings)   { d.call(s) }

// WithNetSim sources collective times from the built-in hierarchical
// network simulator instead of profiled curves — required beyond
// profiled cluster scales. As a PredictorOption it becomes the
// predictor's default; as a PredictOption it selects netsim
// collectives for one Predict/Simulate call.
func WithNetSim() Option {
	return dualOption{
		ctor: func(c *predictorConfig) { c.netsim = true },
		call: func(s *predictSettings) { on := true; s.netsim = &on },
	}
}

// WithCongestion resolves collective completions against link-level
// contention instead of replaying annotated durations verbatim:
// concurrently-active collectives whose communicators span the same
// fabric link split its bandwidth (the latency portion of each
// collective is unaffected). Off by default. The model is exercised
// at simulation time only — capture is unchanged — and is fully
// deterministic: repeated runs, pooled and fresh engines produce
// bit-identical reports. Physical-replay calls (MeasureActual,
// WithPhysicalReplay) model contention through the silicon instead
// and ignore this option. As a PredictorOption it becomes the
// predictor's default; as a PredictOption it enables (or, via
// construction default, carries) congestion for one call.
func WithCongestion() Option {
	return dualOption{
		ctor: func(c *predictorConfig) { c.congestion = true },
		call: func(s *predictSettings) { on := true; s.congestion = &on },
	}
}

// WithSeed namespaces the measurement randomness of the synthetic
// silicon (MeasureActual's launch jitter and contention draws, and
// emulation-time measured host delays). As a PredictorOption it sets
// the predictor default; as a PredictOption it overrides one call.
// The zero seed is the canonical silicon.
func WithSeed(seed uint64) Option {
	return dualOption{
		ctor: func(c *predictorConfig) { c.opts.Seed = seed },
		call: func(s *predictSettings) { s.seed = &seed },
	}
}

// NewPredictor returns a predictor for the cluster. Construction
// validates the cluster but does not train: kernel estimators are
// resolved from the estimator cache on first use (see EstimatorCache
// and its Warm method for eager training).
func NewPredictor(cluster Cluster, kind ProfileKind, opts ...PredictorOption) (*Predictor, error) {
	if err := cluster.Validate(); err != nil {
		return nil, err
	}
	cfg := predictorConfig{
		opts:  core.Options{SelectiveLaunch: true},
		cache: DefaultEstimatorCache(),
	}
	for _, opt := range opts {
		opt.applyPredictor(&cfg)
	}
	fabric, err := topo.ByName(cfg.topology, cluster)
	if err != nil {
		return nil, fmt.Errorf("maya: %w", err)
	}
	cfg.opts.Topology = cfg.topology
	if cfg.ckptSet {
		cfg.opts.Faults = mergeCheckpoint(cfg.opts.Faults, cfg.ckptEvery)
	}
	if cfg.opts.Faults != nil {
		if err := cfg.opts.Faults.Validate(); err != nil {
			return nil, fmt.Errorf("maya: %w", err)
		}
		cfg.opts.NoDedup = true
	}
	return &Predictor{
		cluster:    cluster,
		kind:       kind,
		opts:       cfg.opts,
		cache:      cfg.cache,
		captures:   cfg.captures,
		netsim:     cfg.netsim,
		congestion: cfg.congestion,
		netModel:   netsim.NewWithTopology(cluster, fabric),
		oracle:     core.DefaultOracle(cluster),
	}, nil
}

// WithNetworkSimulator returns a predictor whose collective times
// come from the built-in hierarchical network simulator instead of
// profiled curves.
//
// Deprecated: pass WithNetSim() to NewPredictor, or per call to
// Predict/Simulate.
func (p *Predictor) WithNetworkSimulator() *Predictor {
	return &Predictor{
		cluster:    p.cluster,
		kind:       p.kind,
		opts:       p.opts,
		cache:      p.cache,
		captures:   p.captures,
		netsim:     true,
		congestion: p.congestion,
		netModel:   p.netModel,
		oracle:     p.oracle,
	}
}

// Cluster returns the predictor's target cluster.
func (p *Predictor) Cluster() Cluster { return p.cluster }

// Topology returns the name of the network fabric the predictor
// models ("auto" for the cluster-derived default).
func (p *Predictor) Topology() string { return p.netModel.Topology().Name }

// CongestionDefault reports whether congestion-aware simulation is
// this predictor's construction default (WithCongestion).
func (p *Predictor) CongestionDefault() bool { return p.congestion }

// ProfileKind returns the kernel-family profile the predictor's
// estimators are trained on.
func (p *Predictor) ProfileKind() ProfileKind { return p.kind }

// EstimatorCache returns the cache this predictor resolves its
// estimator suite from — the injected one, or the process-wide
// default. Services front a predictor with it: poll Stats from a
// metrics endpoint, Warm at boot, Evict after hardware swaps.
func (p *Predictor) EstimatorCache() *EstimatorCache { return p.cache }

// CaptureCache returns the capture cache injected with
// WithCaptureCache, or nil when the predictor captures per call.
func (p *Predictor) CaptureCache() *CaptureCache { return p.captures }

// Warm trains (or confirms) this predictor's own estimator suite —
// its cluster and profile kind, in its estimator cache — so the first
// prediction pays no training latency. It is the per-predictor
// convenience over EstimatorCache.Warm; long-running services call it
// at boot. Cancelling ctx aborts the training, which is then not
// cached.
func (p *Predictor) Warm(ctx context.Context) error {
	_, _, err := p.cache.impl.SuiteFor(ctx, p.cluster, p.oracle, p.kind)
	return err
}

// predictSettings are the per-call knobs of Predict, MeasureActual,
// Capture, Simulate and batch requests.
type predictSettings struct {
	flops      float64
	dtype      DType
	oracle     bool
	physical   bool
	breakdown  bool
	observer   sim.Observer
	netsim     *bool
	congestion *bool
	seed       *uint64
	validate   *bool
	faults     *faults.Plan
	faultsSet  bool
	ckptEvery  int
	ckptSet    bool
}

// PredictOption customizes one Predict, MeasureActual, Capture,
// Simulate or batch request.
type PredictOption interface {
	applyPredict(*predictSettings)
}

// predictOption adapts a plain function to PredictOption.
type predictOption func(*predictSettings)

func (f predictOption) applyPredict(s *predictSettings) { f(s) }

// WithModelFLOPs supplies the per-iteration model FLOP count used for
// MFU. Without it MFU is skipped.
func WithModelFLOPs(flops float64) PredictOption {
	return predictOption(func(s *predictSettings) { s.flops = flops })
}

// WithDType sets the training precision whose peak throughput MFU is
// normalized by. BF16 is the default.
func WithDType(dt DType) PredictOption {
	return predictOption(func(s *predictSettings) { s.dtype = dt })
}

// WithOracleAnnotation makes this call annotate kernels with
// ground-truth runtimes instead of learned estimates — the "oracle"
// rows of Table 3. Such calls need no trained estimator suite.
func WithOracleAnnotation() PredictOption {
	return predictOption(func(s *predictSettings) { s.oracle = true })
}

// WithPhysicalReplay makes this call annotate with ground truth and
// replay in the simulator's physical mode (launch jitter, SM
// contention) — exactly what MeasureActual does, but selectable per
// call so a captured Trace can be both predicted and "deployed"
// without re-emulating. Such calls need no trained estimator suite.
func WithPhysicalReplay() PredictOption {
	return predictOption(func(s *predictSettings) { s.physical = true })
}

// WithValidationOverride enables or disables cross-worker collective
// consistency checks for this call only, overriding the predictor's
// WithValidation construction default. Validation runs during
// collation, so for a pre-captured Trace it has no effect.
func WithValidationOverride(on bool) PredictOption {
	return predictOption(func(s *predictSettings) { s.validate = &on })
}

// NewTimeline returns an empty timeline recorder for WithTimeline.
func NewTimeline() *Timeline { return sim.NewTimeline() }

// WithTimeline records this call's simulated run into tl at CUDA-API
// granularity; tl.WriteChromeTrace then exports a Chrome-trace JSON
// timeline loadable in chrome://tracing or Perfetto. Use a fresh
// Timeline per call — a recorder is not safe across concurrent
// requests, and reusing one concatenates runs. A nil tl records
// nothing (the option is a no-op).
func WithTimeline(tl *Timeline) PredictOption {
	return predictOption(func(s *predictSettings) {
		if tl != nil {
			// Guard the typed-nil: a nil *Timeline stored in the
			// interface would defeat the engine's nil fast path.
			s.observer = tl
		}
	})
}

// WithStallBreakdown attributes every worker's idle time in this
// call's simulation — event waits, collective straggler waits,
// host-bound stretches and pipeline bubbles — and fills
// Report.Stalls with the result. The attribution observer costs a
// few percent of simulation time; calls without this option pay
// nothing.
func WithStallBreakdown() PredictOption {
	return predictOption(func(s *predictSettings) { s.breakdown = true })
}

func applyPredictOptions(opts []PredictOption) predictSettings {
	s := predictSettings{dtype: BF16}
	for _, opt := range opts {
		opt.applyPredict(&s)
	}
	return s
}

// resolveSuite returns the predictor's trained estimator suite,
// consulting the cache on every call (a hit is a cheap locked map
// lookup) so that Evict/Purge on the cache take effect for live
// predictors: the next call after an eviction retrains.
func (p *Predictor) resolveSuite(ctx context.Context, s predictSettings) (*estimator.Suite, error) {
	suite, _, err := p.cache.impl.SuiteFor(ctx, p.cluster, p.oracle, p.kind)
	if err != nil {
		return nil, fmt.Errorf("maya: training estimators: %w", err)
	}
	useNetsim := p.netsim
	if s.netsim != nil {
		useNetsim = *s.netsim
	}
	if useNetsim {
		suite = p.netsimView(suite)
	}
	return suite, nil
}

// netsimView returns the netsim-collective wrapping of base, reusing
// the previous wrapper while base is unchanged so repeated netsim
// calls present one stable suite identity (the key capture-attached
// estimate plans are cached under). A cache eviction hands back a new
// base suite, which transparently mints a new wrapper.
func (p *Predictor) netsimView(base *estimator.Suite) *estimator.Suite {
	p.netsimMu.Lock()
	defer p.netsimMu.Unlock()
	if p.netsimBase != base {
		p.netsimBase = base
		p.netsimSuite = base.WithCollectiveEstimator(p.netModel)
	}
	return p.netsimSuite
}

// capturePipeline builds the pipeline view for the capture stage:
// shared cluster, capture-relevant option overrides, no suite (the
// capture stage never estimates).
func (p *Predictor) capturePipeline(s predictSettings) *core.Pipeline {
	opts := p.opts
	if s.validate != nil {
		opts.Validate = *s.validate
	}
	if s.seed != nil {
		opts.Seed = *s.seed
	}
	opts.Faults = resolveFaultPlan(opts.Faults, s)
	if opts.Faults != nil {
		// Fault plans address world ranks: captures taken for this
		// call must carry every worker.
		opts.NoDedup = true
	}
	return &core.Pipeline{Cluster: p.cluster, Opts: opts}
}

// resolveFaultPlan folds the per-call fault options over the
// predictor default: WithFaults replaces the plan, WithCheckpointEvery
// overrides (or introduces) its checkpoint interval on a copy, so
// the caller's plan and the predictor default stay unmutated.
func resolveFaultPlan(def *faults.Plan, s predictSettings) *faults.Plan {
	plan := def
	if s.faultsSet {
		plan = s.faults
	}
	if !s.ckptSet {
		return plan
	}
	return mergeCheckpoint(plan, s.ckptEvery)
}

// mergeCheckpoint returns plan with its checkpoint interval set to k
// (k <= 0 disables checkpointing), minting a checkpoint-only plan
// when there is none yet.
func mergeCheckpoint(plan *faults.Plan, k int) *faults.Plan {
	if plan == nil {
		if k <= 0 {
			return nil
		}
		return &faults.Plan{CheckpointEvery: k}
	}
	cp := *plan
	cp.CheckpointEvery = max(k, 0)
	return &cp
}

// pipelineFor builds the full per-call pipeline view: shared cluster
// and suite, per-call option overrides. Calls that annotate with
// ground truth (oracle or physical replay) skip suite resolution and
// therefore never train.
func (p *Predictor) pipelineFor(ctx context.Context, s predictSettings) (*core.Pipeline, error) {
	pipe := p.capturePipeline(s)
	pipe.Opts.Observer = s.observer
	pipe.Opts.Breakdown = s.breakdown
	if s.oracle {
		pipe.Opts.Oracle = p.oracle
	}
	congestion := p.congestion
	if s.congestion != nil {
		congestion = *s.congestion
	}
	if congestion && !s.physical {
		// Physical replay models contention through the silicon; the
		// link-sharing model applies to simulated predictions only.
		pipe.Opts.Congestion = p.netModel
	}
	if pipe.Opts.Faults != nil && s.physical {
		return nil, errors.New("maya: fault scenarios apply to simulated predictions only; physical replay models the silicon, not operational faults")
	}
	if !s.oracle && !s.physical {
		suite, err := p.resolveSuite(ctx, s)
		if err != nil {
			return nil, err
		}
		pipe.Suite = suite
	}
	return pipe, nil
}

// simulateCapture runs the back half of a prediction on an existing
// capture: physical replay for measurement calls, annotate+simulate
// otherwise. When stampCapture is set the report's Emulate/Collate
// stage timings carry the capture's recorded cost (the composed
// Predict path); reused captures report zero there instead.
func (p *Predictor) simulateCapture(ctx context.Context, pipe *core.Pipeline, c *core.Capture, s predictSettings, stampCapture bool) (*Report, error) {
	var rep *Report
	var err error
	if s.physical {
		rep, err = pipe.Measure(ctx, c, p.oracle, s.flops, s.dtype)
	} else {
		rep, err = pipe.Simulate(ctx, c, s.flops, s.dtype)
	}
	if err != nil {
		return nil, err
	}
	if stampCapture {
		rep.Stages.Emulate, rep.Stages.Collate = c.EmulateTime, c.CollateTime
	}
	return rep, nil
}

// Predict runs the full Maya pipeline for the workload: one capture
// (emulate + collate), then annotate + simulate. Cancellation of ctx
// is observed by every stage, so a large multi-rank prediction
// aborts promptly and returns ctx.Err(). To evaluate one workload
// many ways, Capture once and call Simulate per variant instead.
func (p *Predictor) Predict(ctx context.Context, w Workload, opts ...PredictOption) (*Report, error) {
	if w == nil {
		return nil, errors.New("maya: Predict of a nil workload")
	}
	return p.predict(ctx, w, applyPredictOptions(opts))
}

func (p *Predictor) predict(ctx context.Context, w Workload, s predictSettings) (*Report, error) {
	pipe, err := p.pipelineFor(ctx, s)
	if err != nil {
		return nil, err
	}
	c, paid, err := p.captureFor(ctx, pipe, w, s)
	if err != nil {
		return nil, err
	}
	return p.simulateCapture(ctx, pipe, c, s, paid)
}

// MeasureActual times the workload on the bundled synthetic silicon —
// the stand-in for deploying on real hardware that all accuracy
// experiments compare against. On a real deployment this would be
// replaced by running the job. It is Predict with WithPhysicalReplay:
// capture once, ground-truth annotation, physical-mode replay. It
// needs no trained estimators and observes ctx the same way Predict
// does.
func (p *Predictor) MeasureActual(ctx context.Context, w Workload, opts ...PredictOption) (*Report, error) {
	if w == nil {
		return nil, errors.New("maya: MeasureActual of a nil workload")
	}
	s := applyPredictOptions(opts)
	s.physical = true
	return p.predict(ctx, w, s)
}
