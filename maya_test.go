package maya_test

import (
	"math"
	"testing"

	"maya"
)

func TestPublicQuickstartFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("trains estimators")
	}
	cluster := maya.DGXV100(1)
	pred, err := maya.NewPredictor(cluster, maya.ProfileLLM)
	if err != nil {
		t.Fatal(err)
	}
	model := maya.GPT3_1_3B()
	w, err := maya.NewMegatron(maya.MegatronConfig{
		Model: model, NGPUs: 8, GlobalBatch: 32, TP: 2, PP: 2, MicroBatches: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	flops := model.TrainFLOPsPerIter(32)
	rep, err := pred.Predict(w, flops, maya.BF16)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OOM {
		t.Fatalf("unexpected OOM: %v", rep)
	}
	if rep.IterTime <= 0 || rep.MFU <= 0 || rep.MFU > 1 || rep.PeakMemBytes <= 0 {
		t.Fatalf("implausible report: %+v", rep)
	}
	actual, err := pred.MeasureActual(w, flops, maya.BF16)
	if err != nil {
		t.Fatal(err)
	}
	e := math.Abs(rep.IterTime.Seconds()-actual.IterTime.Seconds()) / actual.IterTime.Seconds()
	if e > 0.10 {
		t.Fatalf("facade prediction error %.1f%%", e*100)
	}
}

func TestPublicClusterParsing(t *testing.T) {
	for _, spec := range []string{"8xV100", "64xH100", "8xA40"} {
		c, err := maya.ClusterByName(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if c.TotalGPUs() == 0 {
			t.Fatalf("%s: empty cluster", spec)
		}
	}
	if _, err := maya.ClusterByName("3xTPU"); err == nil {
		t.Fatal("bogus spec accepted")
	}
}

func TestPublicSearchFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a search")
	}
	out, err := maya.FindRecipe(
		maya.SearchProblem{Model: maya.GPT3_1_3B(), Cluster: maya.DGXV100(1), GlobalBatch: 32},
		maya.ProfileLLM,
		maya.SearchOptions{Algorithm: "cma", Budget: 60, Parallel: 4, Seed: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	if out.Best == nil || out.Best.OOM || out.Best.IterTime <= 0 {
		t.Fatalf("search produced no usable recipe: %+v", out.Best)
	}
	if out.Stats.Executed == 0 {
		t.Fatal("search executed nothing")
	}
}

func TestNetworkSimulatorPlugIn(t *testing.T) {
	if testing.Short() {
		t.Skip("trains estimators")
	}
	cluster := maya.DGXH100(16) // 128 GPUs: beyond profiled collectives
	pred, err := maya.NewPredictor(cluster, maya.ProfileLLM)
	if err != nil {
		t.Fatal(err)
	}
	pred = pred.WithNetworkSimulator()
	model := maya.GPT3_18_4B()
	w, err := maya.NewMegatron(maya.MegatronConfig{
		Model: model, NGPUs: 128, GlobalBatch: 256, TP: 8, PP: 4, MicroBatches: 8,
		ActRecompute: true, DistOptimizer: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pred.Predict(w, model.TrainFLOPsPerIter(256), maya.BF16)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OOM || rep.IterTime <= 0 {
		t.Fatalf("hyperscale prediction failed: %+v", rep)
	}
}
