package maya_test

import (
	"context"
	"math"
	"testing"

	"maya"
)

func TestPublicQuickstartFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("trains estimators")
	}
	ctx := context.Background()
	cluster := maya.DGXV100(1)
	pred, err := maya.NewPredictor(cluster, maya.ProfileLLM)
	if err != nil {
		t.Fatal(err)
	}
	model := maya.GPT3_1_3B()
	w, err := maya.NewMegatron(maya.MegatronConfig{
		Model: model, NGPUs: 8, GlobalBatch: 32, TP: 2, PP: 2, MicroBatches: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	flops := model.TrainFLOPsPerIter(32)
	rep, err := pred.Predict(ctx, w, maya.WithModelFLOPs(flops), maya.WithDType(maya.BF16))
	if err != nil {
		t.Fatal(err)
	}
	if rep.OOM {
		t.Fatalf("unexpected OOM: %v", rep)
	}
	if rep.IterTime <= 0 || rep.MFU <= 0 || rep.MFU > 1 || rep.PeakMemBytes <= 0 {
		t.Fatalf("implausible report: %+v", rep)
	}
	actual, err := pred.MeasureActual(ctx, w, maya.WithModelFLOPs(flops), maya.WithDType(maya.BF16))
	if err != nil {
		t.Fatal(err)
	}
	e := math.Abs(rep.IterTime.Seconds()-actual.IterTime.Seconds()) / actual.IterTime.Seconds()
	if e > 0.10 {
		t.Fatalf("facade prediction error %.1f%%", e*100)
	}
}

func TestPublicClusterParsing(t *testing.T) {
	for _, spec := range []string{"8xV100", "64xH100", "8xA40"} {
		c, err := maya.ClusterByName(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if c.TotalGPUs() == 0 {
			t.Fatalf("%s: empty cluster", spec)
		}
	}
	if _, err := maya.ClusterByName("3xTPU"); err == nil {
		t.Fatal("bogus spec accepted")
	}
}

func TestPublicSearchFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a search")
	}
	ctx := context.Background()
	pred, err := maya.NewPredictor(maya.DGXV100(1), maya.ProfileLLM)
	if err != nil {
		t.Fatal(err)
	}
	out, err := pred.FindRecipe(ctx,
		maya.SearchProblem{Model: maya.GPT3_1_3B(), GlobalBatch: 32},
		maya.SearchOptions{Algorithm: "cma", Budget: 60, Parallel: 4, Seed: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	if out.Best == nil || out.Best.OOM || out.Best.IterTime <= 0 {
		t.Fatalf("search produced no usable recipe: %+v", out.Best)
	}
	if out.Stats.Executed == 0 {
		t.Fatal("search executed nothing")
	}
}

func TestFindRecipeClusterMismatch(t *testing.T) {
	pred, err := maya.NewPredictor(maya.DGXV100(1), maya.ProfileLLM)
	if err != nil {
		t.Fatal(err)
	}
	_, err = pred.FindRecipe(context.Background(),
		maya.SearchProblem{Model: maya.GPT3_1_3B(), Cluster: maya.DGXH100(4), GlobalBatch: 32},
		maya.SearchOptions{Budget: 10},
	)
	if err == nil {
		t.Fatal("FindRecipe accepted a problem targeting a different cluster")
	}
}

func TestNetworkSimulatorPlugIn(t *testing.T) {
	if testing.Short() {
		t.Skip("trains estimators")
	}
	ctx := context.Background()
	cluster := maya.DGXH100(16) // 128 GPUs: beyond profiled collectives
	pred, err := maya.NewPredictor(cluster, maya.ProfileLLM, maya.WithNetSim())
	if err != nil {
		t.Fatal(err)
	}
	model := maya.GPT3_18_4B()
	w, err := maya.NewMegatron(maya.MegatronConfig{
		Model: model, NGPUs: 128, GlobalBatch: 256, TP: 8, PP: 4, MicroBatches: 8,
		ActRecompute: true, DistOptimizer: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pred.Predict(ctx, w,
		maya.WithModelFLOPs(model.TrainFLOPsPerIter(256)), maya.WithDType(maya.BF16))
	if err != nil {
		t.Fatal(err)
	}
	if rep.OOM || rep.IterTime <= 0 {
		t.Fatalf("hyperscale prediction failed: %+v", rep)
	}

	// The per-call option and the deprecated copy-returning method
	// select the same machinery.
	plain, err := maya.NewPredictor(cluster, maya.ProfileLLM)
	if err != nil {
		t.Fatal(err)
	}
	perCall, err := plain.Predict(ctx, w, maya.WithNetSim(),
		maya.WithModelFLOPs(model.TrainFLOPsPerIter(256)), maya.WithDType(maya.BF16))
	if err != nil {
		t.Fatal(err)
	}
	deprecated, err := plain.WithNetworkSimulator().Predict(ctx, w,
		maya.WithModelFLOPs(model.TrainFLOPsPerIter(256)), maya.WithDType(maya.BF16))
	if err != nil {
		t.Fatal(err)
	}
	if perCall.IterTime != rep.IterTime || deprecated.IterTime != rep.IterTime {
		t.Fatalf("WithNetSim variants disagree: ctor %v, per-call %v, deprecated %v",
			rep.IterTime, perCall.IterTime, deprecated.IterTime)
	}
}

func TestEstimatorCacheLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("trains estimators")
	}
	ctx := context.Background()
	cache := maya.NewEstimatorCache()
	cluster := maya.DGXV100(1)
	if err := cache.Warm(ctx, cluster, maya.ProfileLLM); err != nil {
		t.Fatalf("Warm: %v", err)
	}
	s := cache.Stats()
	if s.Trained != 1 || s.Entries != 1 {
		t.Fatalf("after Warm: %+v", s)
	}

	// A predictor wired to the warmed cache predicts without training.
	pred, err := maya.NewPredictor(cluster, maya.ProfileLLM, maya.WithEstimatorCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	model := maya.GPT3_1_3B()
	w, err := maya.NewMegatron(maya.MegatronConfig{
		Model: model, NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pred.Predict(ctx, w); err != nil {
		t.Fatal(err)
	}
	s = cache.Stats()
	if s.Trained != 1 {
		t.Fatalf("prediction retrained despite warm cache: %+v", s)
	}
	if s.Hits == 0 {
		t.Fatalf("warm prediction did not hit the cache: %+v", s)
	}

	if !cache.Evict(cluster, maya.ProfileLLM) {
		t.Fatal("Evict found nothing")
	}
	if s := cache.Stats(); s.Entries != 0 || s.Evictions != 1 {
		t.Fatalf("after Evict: %+v", s)
	}
}
