package maya_test

// Tests of the run-observability surface: Chrome-trace timelines
// (WithTimeline) and per-worker stall attribution
// (WithStallBreakdown). Ground-truth annotation keeps them free of
// estimator training.

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"maya"
)

func TestWithStallBreakdownThroughPublicAPI(t *testing.T) {
	ctx := context.Background()
	pred, w := tracePredictor(t)

	tr, err := pred.Capture(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pred.Simulate(ctx, tr, maya.WithOracleAnnotation(), maya.WithStallBreakdown())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stalls == nil {
		t.Fatal("WithStallBreakdown produced no Stalls")
	}
	if got, want := len(rep.Stalls.Workers), rep.UniqueWorkers; got != want {
		t.Fatalf("stall rows = %d, want one per unique worker (%d)", got, want)
	}
	tot := rep.Stalls.Total()
	if tot.Busy == 0 {
		t.Error("stall attribution found no busy time")
	}
	if tot.CollectiveWait == 0 {
		t.Error("a tp2/pp2 job should show collective straggler wait")
	}

	// The JSON contract carries the breakdown.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"collective_wait_ns"`)) {
		t.Errorf("report JSON missing stall fields: %s", data)
	}

	// Without the option the report stays lean.
	plain, err := pred.Simulate(ctx, tr, maya.WithOracleAnnotation())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stalls != nil {
		t.Error("Stalls present without WithStallBreakdown")
	}

	// The breakdown rides along with physical replay too.
	act, err := pred.Simulate(ctx, tr, maya.WithPhysicalReplay(), maya.WithStallBreakdown())
	if err != nil {
		t.Fatal(err)
	}
	if act.Stalls == nil || act.Stalls.Total().Busy == 0 {
		t.Error("physical replay lost the stall breakdown")
	}
}

func TestWithTimelineThroughPublicAPI(t *testing.T) {
	ctx := context.Background()
	pred, w := tracePredictor(t)

	tr, err := pred.Capture(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	tl := maya.NewTimeline()
	rep, err := pred.Simulate(ctx, tr, maya.WithOracleAnnotation(), maya.WithTimeline(tl))
	if err != nil {
		t.Fatal(err)
	}
	if tl.Len() == 0 {
		t.Fatal("timeline recorded no events")
	}
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("timeline export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) <= tl.Len() {
		t.Errorf("export has %d events for %d recorded (+metadata expected)",
			len(doc.TraceEvents), tl.Len())
	}

	// Observation must not perturb the simulation.
	plain, err := pred.Simulate(ctx, tr, maya.WithOracleAnnotation())
	if err != nil {
		t.Fatal(err)
	}
	if stripStages(rep) != stripStages(plain) {
		t.Errorf("timeline observation changed the prediction:\n%+v\n%+v", rep, plain)
	}

	// Timeline composes with the breakdown on one call.
	tl2 := maya.NewTimeline()
	both, err := pred.Simulate(ctx, tr, maya.WithOracleAnnotation(),
		maya.WithTimeline(tl2), maya.WithStallBreakdown())
	if err != nil {
		t.Fatal(err)
	}
	if tl2.Len() == 0 || both.Stalls == nil {
		t.Error("WithTimeline and WithStallBreakdown did not compose")
	}
}

func TestWithTimelineNilIsNoOp(t *testing.T) {
	ctx := context.Background()
	pred, w := tracePredictor(t)
	tr, err := pred.Capture(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	// The natural conditional pattern must not smuggle a typed-nil
	// observer into the engine and panic mid-simulation.
	var tl *maya.Timeline
	if _, err := pred.Simulate(ctx, tr, maya.WithOracleAnnotation(), maya.WithTimeline(tl)); err != nil {
		t.Fatal(err)
	}
}
