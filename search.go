package maya

import (
	"context"
	"fmt"
	"sync"
	"time"

	"maya/internal/core"
	"maya/internal/framework"
	"maya/internal/search"
)

// Search types re-exported from Maya-Search.
type (
	// SearchProblem fixes model, cluster and global batch.
	SearchProblem = search.Problem
	// SearchOptions tunes algorithm, budget, parallelism, pruning.
	SearchOptions = search.Options
	// SearchOutcome is a completed search with stats and trajectory.
	SearchOutcome = search.Outcome
	// Knobs is one point in the recipe space.
	Knobs = search.Knobs
)

// MegatronSearchSpace returns the Table-5 recipe space.
func MegatronSearchSpace() search.Space { return search.MegatronSpace() }

// FindRecipe searches for the lowest-iteration-time training recipe
// for a model on the predictor's cluster, evaluating candidates
// through the predictor's own emulation pipeline (no GPUs involved)
// — so the search reuses the already-trained estimator suite instead
// of re-resolving one per call. This is the ~15-line integration the
// paper describes, packaged as one call.
//
// problem.Cluster may be left zero to mean the predictor's cluster; a
// conflicting cluster is an error. Cancelling ctx stops the search
// mid-trial-loop: no further trials are issued, and the partial
// outcome is returned alongside ctx.Err().
//
// Trial evaluation is worker-affine: each of the opts.Parallel search
// workers owns a persistent simulation engine and annotation overlay
// (core.SimScratch) for the whole search, so trials re-acquire
// nothing per evaluation. Every capture carries its estimate plan
// (the first simulate of a trial's capture resolves each unique
// kernel shape once; re-visited topologies annotate by a single table
// copy). With WithCaptureCache, trials whose topology was already
// captured — in this search, a previous search, or a PredictBatch
// sweep — skip emulation and collation entirely.
//
// Two trial classes never pay a full simulation: configurations whose
// capture carries an OOM verdict return it directly (accounted as
// Stats.Verdict; opts.DisableVerdictFastPath restores the simulate
// path for the Fig. 15 ablation), and trials whose simulated clock
// provably exceeds the generation's domination bound are abandoned
// mid-simulation (Stats.Dominated; see Options.DominationSlack). Both
// are deterministic: outcomes are bit-identical for any Parallel
// value.
func (p *Predictor) FindRecipe(ctx context.Context, problem SearchProblem, opts SearchOptions) (*SearchOutcome, error) {
	if problem.Cluster.Name == "" {
		problem.Cluster = p.cluster
	} else if problem.Cluster.Name != p.cluster.Name {
		return nil, fmt.Errorf("maya: FindRecipe problem targets %s but the predictor models %s",
			problem.Cluster.Name, p.cluster.Name)
	}
	settings := applyPredictOptions(nil)
	pipe, err := p.pipelineFor(ctx, settings)
	if err != nil {
		return nil, err
	}
	flops := problem.Model.TrainFLOPsPerIter(problem.GlobalBatch)
	var mu sync.Mutex
	var scratches []*core.SimScratch
	defer func() {
		for _, s := range scratches {
			s.Release()
		}
	}()
	factory := func(int) search.Evaluator {
		scratch := core.AcquireSimScratch()
		mu.Lock()
		scratches = append(scratches, scratch)
		mu.Unlock()
		return func(ctx context.Context, cfg framework.MegatronConfig, bound time.Duration) (search.EvalResult, error) {
			w, err := framework.NewMegatron(cfg)
			if err != nil {
				return search.EvalResult{}, err
			}
			c, _, err := p.captureFor(ctx, pipe, w, settings)
			if err != nil {
				return search.EvalResult{}, err
			}
			if c.OOM && !opts.DisableVerdictFastPath {
				return search.EvalResult{OOM: true, PeakMem: c.PeakMemBytes, Verdict: true}, nil
			}
			rep, err := pipe.SimulateScratch(ctx, c, flops, BF16, scratch, bound)
			if err != nil {
				return search.EvalResult{}, err
			}
			if rep.Truncated {
				return search.EvalResult{Truncated: true, PeakMem: rep.PeakMemBytes}, nil
			}
			return search.EvalResult{
				OOM: rep.OOM, IterTime: rep.IterTime, MFU: rep.MFU, PeakMem: rep.PeakMemBytes,
			}, nil
		}
	}
	return search.RunWorkers(ctx, problem, factory, opts)
}
