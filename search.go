package maya

import (
	"context"
	"fmt"

	"maya/internal/framework"
	"maya/internal/search"
)

// Search types re-exported from Maya-Search.
type (
	// SearchProblem fixes model, cluster and global batch.
	SearchProblem = search.Problem
	// SearchOptions tunes algorithm, budget, parallelism, pruning.
	SearchOptions = search.Options
	// SearchOutcome is a completed search with stats and trajectory.
	SearchOutcome = search.Outcome
	// Knobs is one point in the recipe space.
	Knobs = search.Knobs
)

// MegatronSearchSpace returns the Table-5 recipe space.
func MegatronSearchSpace() search.Space { return search.MegatronSpace() }

// FindRecipe searches for the lowest-iteration-time training recipe
// for a model on the predictor's cluster, evaluating candidates
// through the predictor's own emulation pipeline (no GPUs involved)
// — so the search reuses the already-trained estimator suite instead
// of re-resolving one per call. This is the ~15-line integration the
// paper describes, packaged as one call.
//
// problem.Cluster may be left zero to mean the predictor's cluster; a
// conflicting cluster is an error. Cancelling ctx stops the search
// mid-trial-loop: no further trials are issued, and the partial
// outcome is returned alongside ctx.Err().
//
// Trial evaluations are pooled the way batch sweeps are: every
// capture carries its estimate plan (the first simulate of a trial's
// capture resolves each unique kernel shape once; re-visited
// topologies annotate by a single table copy), every replay draws
// its simulation engine from the process-wide pool and annotates
// through a pooled duration overlay instead of deep-copying the
// trace, so a 2000-trial search allocates engine storage a handful
// of times, not 2000. With WithCaptureCache, trials whose topology
// was already captured — in this search, a previous search, or a
// PredictBatch sweep — skip emulation and collation entirely.
func (p *Predictor) FindRecipe(ctx context.Context, problem SearchProblem, opts SearchOptions) (*SearchOutcome, error) {
	if problem.Cluster.Name == "" {
		problem.Cluster = p.cluster
	} else if problem.Cluster.Name != p.cluster.Name {
		return nil, fmt.Errorf("maya: FindRecipe problem targets %s but the predictor models %s",
			problem.Cluster.Name, p.cluster.Name)
	}
	settings := applyPredictOptions(nil)
	pipe, err := p.pipelineFor(ctx, settings)
	if err != nil {
		return nil, err
	}
	flops := problem.Model.TrainFLOPsPerIter(problem.GlobalBatch)
	eval := func(ctx context.Context, cfg framework.MegatronConfig) (search.EvalResult, error) {
		w, err := framework.NewMegatron(cfg)
		if err != nil {
			return search.EvalResult{}, err
		}
		c, _, err := p.captureFor(ctx, pipe, w, settings)
		if err != nil {
			return search.EvalResult{}, err
		}
		rep, err := pipe.Simulate(ctx, c, flops, BF16)
		if err != nil {
			return search.EvalResult{}, err
		}
		return search.EvalResult{
			OOM: rep.OOM, IterTime: rep.IterTime, MFU: rep.MFU, PeakMem: rep.PeakMemBytes,
		}, nil
	}
	return search.Run(ctx, problem, eval, opts)
}
