package maya

import (
	"maya/internal/core"
	"maya/internal/framework"
	"maya/internal/hardware"
	"maya/internal/search"
)

// Search types re-exported from Maya-Search.
type (
	// SearchProblem fixes model, cluster and global batch.
	SearchProblem = search.Problem
	// SearchOptions tunes algorithm, budget, parallelism, pruning.
	SearchOptions = search.Options
	// SearchOutcome is a completed search with stats and trajectory.
	SearchOutcome = search.Outcome
	// Knobs is one point in the recipe space.
	Knobs = search.Knobs
)

// MegatronSearchSpace returns the Table-5 recipe space.
func MegatronSearchSpace() search.Space { return search.MegatronSpace() }

// FindRecipe searches for the lowest-iteration-time training recipe
// for a model on a cluster, evaluating candidates through Maya's
// emulation pipeline (no GPUs involved). This is the ~15-line
// integration the paper describes, packaged as one call.
func FindRecipe(p SearchProblem, kind ProfileKind, opts SearchOptions) (*SearchOutcome, error) {
	oracle := core.DefaultOracle(p.Cluster)
	suite, _, err := core.SuiteFor(p.Cluster, oracle, kind)
	if err != nil {
		return nil, err
	}
	pipe := &core.Pipeline{Cluster: p.Cluster, Suite: suite, Opts: core.Options{SelectiveLaunch: true}}
	flops := p.Model.TrainFLOPsPerIter(p.GlobalBatch)
	eval := func(cfg framework.MegatronConfig) (search.EvalResult, error) {
		w, err := framework.NewMegatron(cfg)
		if err != nil {
			return search.EvalResult{}, err
		}
		rep, err := pipe.Predict(w, flops, hardware.BF16)
		if err != nil {
			return search.EvalResult{}, err
		}
		return search.EvalResult{
			OOM: rep.OOM, IterTime: rep.IterTime, MFU: rep.MFU, PeakMem: rep.PeakMemBytes,
		}, nil
	}
	return search.Run(p, eval, opts)
}
