package maya_test

import (
	"bytes"
	"context"
	"testing"

	"maya"
)

// topoWorkload is a 16-rank recipe spanning both nodes of DGXH100(2),
// so cross-island collectives exist for the fabric model to price.
func topoWorkload(t *testing.T) maya.Workload {
	t.Helper()
	w, err := maya.NewMegatron(maya.MegatronConfig{
		Model: maya.GPT3_1_3B(), NGPUs: 16, GlobalBatch: 32,
		TP: 2, PP: 2, MicroBatches: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestTopologySpecValidationAndProvenance(t *testing.T) {
	ctx := context.Background()
	cluster := maya.DGXH100(2)

	if _, err := maya.NewPredictor(cluster, maya.ProfileLLM, maya.WithTopology("mesh:banana")); err == nil {
		t.Fatal("NewPredictor accepted an invalid topology spec")
	}

	pred, err := maya.NewPredictor(cluster, maya.ProfileLLM, maya.WithTopology("oversub:2"))
	if err != nil {
		t.Fatal(err)
	}
	if got := pred.Topology(); got != "oversub:2" {
		t.Fatalf("Topology() = %q, want oversub:2", got)
	}

	// The fabric spec is stamped into captures and survives the
	// serialization round trip.
	tr, err := pred.Capture(ctx, topoWorkload(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Topology(); got != "oversub:2" {
		t.Fatalf("trace topology = %q, want oversub:2", got)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := maya.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Topology(); got != "oversub:2" {
		t.Fatalf("reloaded trace topology = %q, want oversub:2", got)
	}
}

func TestCongestionDeterministicAndMonotone(t *testing.T) {
	ctx := context.Background()
	pred, err := maya.NewPredictor(maya.DGXH100(2), maya.ProfileLLM)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pred.Capture(ctx, topoWorkload(t))
	if err != nil {
		t.Fatal(err)
	}

	// Oracle annotation needs no trained suite; the comparison isolates
	// the congestion model.
	plain, err := pred.Simulate(ctx, tr, maya.WithOracleAnnotation())
	if err != nil {
		t.Fatal(err)
	}
	congested, err := pred.Simulate(ctx, tr, maya.WithOracleAnnotation(), maya.WithCongestion())
	if err != nil {
		t.Fatal(err)
	}
	// Link sharing can only slow collectives down (factor >= 1; solo
	// flows replay exactly), and this recipe's data-parallel allreduces
	// overlap on the spine, so contention must show up.
	if congested.CommTime <= plain.CommTime {
		t.Fatalf("congestion did not stretch comm: %v vs %v", congested.CommTime, plain.CommTime)
	}
	if congested.IterTime < plain.IterTime {
		t.Fatalf("congested iteration %v beat uncongested %v", congested.IterTime, plain.IterTime)
	}

	// Bit-identical across repeated runs, and the construction-default
	// form agrees with the per-call option.
	for i := 0; i < 3; i++ {
		again, err := pred.Simulate(ctx, tr, maya.WithOracleAnnotation(), maya.WithCongestion())
		if err != nil {
			t.Fatal(err)
		}
		if again.IterTime != congested.IterTime || again.CommTime != congested.CommTime {
			t.Fatalf("congested run %d diverged: %v/%v vs %v/%v",
				i, again.IterTime, again.CommTime, congested.IterTime, congested.CommTime)
		}
	}
	byDefault, err := maya.NewPredictor(maya.DGXH100(2), maya.ProfileLLM, maya.WithCongestion())
	if err != nil {
		t.Fatal(err)
	}
	if !byDefault.CongestionDefault() {
		t.Fatal("CongestionDefault not set by WithCongestion")
	}
	defRep, err := byDefault.Simulate(ctx, tr, maya.WithOracleAnnotation())
	if err != nil {
		t.Fatal(err)
	}
	if defRep.IterTime != congested.IterTime {
		t.Fatalf("construction-default congestion %v disagrees with per-call %v",
			defRep.IterTime, congested.IterTime)
	}

	// Physical replay ignores the option: silicon contention is already
	// the ground truth there.
	phys, err := pred.Simulate(ctx, tr, maya.WithPhysicalReplay())
	if err != nil {
		t.Fatal(err)
	}
	physCong, err := pred.Simulate(ctx, tr, maya.WithPhysicalReplay(), maya.WithCongestion())
	if err != nil {
		t.Fatal(err)
	}
	if phys.IterTime != physCong.IterTime {
		t.Fatalf("WithCongestion changed physical replay: %v vs %v", physCong.IterTime, phys.IterTime)
	}
}
