package maya

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"maya/internal/core"
)

// Trace is the durable artifact of one capture: the collated
// execution trace of a workload on a cluster, with communicator
// membership, dedup accounting and the peak-memory / OOM verdict.
//
// Emulation and collation are the expensive half of a prediction;
// a Trace pays them once. It is immutable — Simulate annotates
// through pooled duration overlays and capture-attached estimate
// plans, never the trace itself — so one capture feeds any number of
// predictions (learned estimators, oracle, netsim collectives,
// physical replay), can be serialized with WriteTo, archived, and
// reloaded with ReadTrace on another machine or another day.
//
//	tr, _ := pred.Capture(ctx, w)
//	learned, _ := pred.Simulate(ctx, tr, maya.WithModelFLOPs(f))
//	oracle, _ := pred.Simulate(ctx, tr, maya.WithOracleAnnotation())
//	actual, _ := pred.Simulate(ctx, tr, maya.WithPhysicalReplay())
type Trace struct {
	cap *core.Capture
}

// TraceFormatVersion is the on-disk format version WriteTo emits and
// ReadTrace accepts.
const TraceFormatVersion = core.TraceFormatVersion

// Serialization errors, matchable with errors.Is.
var (
	// ErrTraceFormat marks input that is not a Maya trace or is
	// corrupt.
	ErrTraceFormat = core.ErrTraceFormat
	// ErrTraceVersion marks a trace written by an incompatible format
	// version.
	ErrTraceVersion = core.ErrTraceVersion
)

// Workload names the captured training program.
func (t *Trace) Workload() string { return t.cap.Workload }

// Cluster names the cluster the capture modeled.
func (t *Trace) Cluster() string { return t.cap.Cluster }

// Topology is the network-fabric spec the capture's predictor was
// configured with ("" for the cluster-derived auto topology).
// Provenance only: the trace itself is topology-independent and can
// be re-simulated under any fabric.
func (t *Trace) Topology() string { return t.cap.Topology }

// TotalWorkers is the job's world size.
func (t *Trace) TotalWorkers() int { return t.cap.TotalWorkers }

// UniqueWorkers counts the ranks actually emulated after worker
// deduplication or selective launch.
func (t *Trace) UniqueWorkers() int { return t.cap.UniqueWorkers }

// PeakMemBytes is the largest per-device allocator high-water mark.
func (t *Trace) PeakMemBytes() int64 { return t.cap.PeakMemBytes }

// OOM reports whether the configuration exceeded device memory
// during capture. Simulating an OOM trace yields an OOM report.
func (t *Trace) OOM() bool { return t.cap.OOM }

// CaptureStages returns what this capture cost: the Emulate and
// Collate stage timings paid once at capture time. Reports from
// Simulate leave those stages zero — the reuse saving made visible.
func (t *Trace) CaptureStages() StageTimings {
	return StageTimings{Emulate: t.cap.EmulateTime, Collate: t.cap.CollateTime}
}

func (t *Trace) String() string {
	if t.cap.OOM {
		return fmt.Sprintf("trace of %s on %s: OOM (peak %0.1f GiB)",
			t.cap.Workload, t.cap.Cluster, float64(t.cap.PeakMemBytes)/(1<<30))
	}
	return fmt.Sprintf("trace of %s on %s: %d/%d unique workers, peak %0.1f GiB, captured in %v",
		t.cap.Workload, t.cap.Cluster, t.cap.UniqueWorkers, t.cap.TotalWorkers,
		float64(t.cap.PeakMemBytes)/(1<<30),
		(t.cap.EmulateTime + t.cap.CollateTime).Round(time.Millisecond))
}

// WriteTo serializes the trace in Maya's versioned format (magic,
// format version, JSON payload, checksum). It implements
// io.WriterTo.
func (t *Trace) WriteTo(w io.Writer) (int64, error) { return t.cap.WriteTo(w) }

// ReadTrace parses a trace produced by WriteTo. It rejects non-trace
// input (ErrTraceFormat) and incompatible versions (ErrTraceVersion),
// and reports truncation as io.ErrUnexpectedEOF.
func ReadTrace(r io.Reader) (*Trace, error) {
	cap, err := core.ReadCapture(r)
	if err != nil {
		return nil, err
	}
	return &Trace{cap: cap}, nil
}

// Capture runs the expensive front half of a prediction — emulation
// of the workload's (unique) ranks and trace collation — once, and
// returns the immutable Trace artifact. No estimators are trained or
// consulted. Out-of-memory configurations are a result, not an
// error: the trace carries the OOM verdict.
//
// Capture honors the capture-relevant options (WithSeed,
// WithValidationOverride); annotation options are per-Simulate. When
// the predictor carries a CaptureCache and the workload is
// fingerprintable, the returned Trace may wrap a cached (shared,
// immutable) capture instead of re-emulating.
func (p *Predictor) Capture(ctx context.Context, w Workload, opts ...PredictOption) (*Trace, error) {
	if w == nil {
		return nil, errors.New("maya: Capture of a nil workload")
	}
	s := applyPredictOptions(opts)
	c, _, err := p.captureFor(ctx, p.capturePipeline(s), w, s)
	if err != nil {
		return nil, err
	}
	return &Trace{cap: c}, nil
}

// Simulate annotates a pooled overlay view of the trace and
// simulates it, paying only the estimate and simulate stages — the
// capture is reused and never mutated, and repeated learned
// Simulates of one trace reuse its capture-attached estimate plan
// (each unique kernel shape is resolved once, later calls annotate
// by table copy). Per-call options select the annotation:
// the predictor's learned suite by default, WithOracleAnnotation for
// ground-truth kernel times, WithNetSim for netsim collectives, and
// WithPhysicalReplay for the full deployment stand-in (ground truth
// plus physical-mode replay, as MeasureActual). The returned report's
// Emulate/Collate stage timings are zero; the capture's own cost is
// available from Trace.CaptureStages.
//
// The trace must have been captured for the predictor's cluster.
func (p *Predictor) Simulate(ctx context.Context, tr *Trace, opts ...PredictOption) (*Report, error) {
	if tr == nil || tr.cap == nil {
		return nil, errors.New("maya: Simulate of a nil trace")
	}
	if tr.cap.Cluster != p.cluster.Name {
		return nil, fmt.Errorf("maya: trace captured on %s but the predictor models %s",
			tr.cap.Cluster, p.cluster.Name)
	}
	s := applyPredictOptions(opts)
	pipe, err := p.pipelineFor(ctx, s)
	if err != nil {
		return nil, err
	}
	return p.simulateCapture(ctx, pipe, tr.cap, s, false)
}
