package maya_test

// Tests of the first-class Trace artifact: capture once, annotate &
// simulate many. Everything here annotates with ground truth (oracle
// or physical replay), so no estimator training is needed and the
// tests run fast.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"testing"

	"maya"
)

func tracePredictor(t *testing.T) (*maya.Predictor, maya.Workload) {
	t.Helper()
	pred, err := maya.NewPredictor(maya.DGXV100(1), maya.ProfileLLM)
	if err != nil {
		t.Fatal(err)
	}
	model := maya.GPT3_1_3B()
	w, err := maya.NewMegatron(maya.MegatronConfig{
		Model: model, NGPUs: 8, GlobalBatch: 16, TP: 2, PP: 2, MicroBatches: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pred, w
}

// stripStages removes wall-clock stage timings so reports compare by
// value.
func stripStages(r *maya.Report) maya.Report {
	c := *r
	c.Stages = maya.StageTimings{}
	return c
}

func TestTraceCaptureReuseMatchesPredict(t *testing.T) {
	ctx := context.Background()
	pred, w := tracePredictor(t)

	tr, err := pred.Capture(ctx, w)
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}
	if tr.OOM() || tr.TotalWorkers() != 8 || tr.UniqueWorkers() != 2 || tr.PeakMemBytes() <= 0 {
		t.Fatalf("implausible trace: %v", tr)
	}

	// One capture, three views: oracle prediction, physical replay,
	// and a second oracle prediction proving determinism.
	oracleRep, err := pred.Simulate(ctx, tr, maya.WithOracleAnnotation())
	if err != nil {
		t.Fatalf("Simulate(oracle): %v", err)
	}
	actualRep, err := pred.Simulate(ctx, tr, maya.WithPhysicalReplay())
	if err != nil {
		t.Fatalf("Simulate(physical): %v", err)
	}
	again, err := pred.Simulate(ctx, tr, maya.WithOracleAnnotation())
	if err != nil {
		t.Fatal(err)
	}
	if stripStages(oracleRep) != stripStages(again) {
		t.Errorf("repeated Simulate from one trace diverged:\n%+v\n%+v", oracleRep, again)
	}

	// The composed entry points must agree with the staged path.
	predicted, err := pred.Predict(ctx, w, maya.WithOracleAnnotation())
	if err != nil {
		t.Fatal(err)
	}
	if stripStages(predicted) != stripStages(oracleRep) {
		t.Errorf("Predict disagrees with Capture+Simulate:\n%+v\n%+v", predicted, oracleRep)
	}
	measured, err := pred.MeasureActual(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if stripStages(measured) != stripStages(actualRep) {
		t.Errorf("MeasureActual disagrees with Simulate(WithPhysicalReplay):\n%+v\n%+v", measured, actualRep)
	}

	// Stage accounting: the composed Predict paid emulation; the
	// trace-reusing Simulate calls must not have.
	if predicted.Stages.Emulate <= 0 {
		t.Error("Predict report carries no emulation time")
	}
	if oracleRep.Stages.Emulate != 0 || oracleRep.Stages.Collate != 0 {
		t.Errorf("Simulate from a trace must skip emulate+collate, got %+v", oracleRep.Stages)
	}
	if cs := tr.CaptureStages(); cs.Emulate <= 0 {
		t.Errorf("trace does not account its capture cost: %+v", cs)
	}
}

func TestTraceSerializationPublicAPI(t *testing.T) {
	ctx := context.Background()
	pred, w := tracePredictor(t)
	tr, err := pred.Capture(ctx, w)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	raw := buf.Bytes()

	loaded, err := maya.ReadTrace(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if loaded.Workload() != tr.Workload() || loaded.Cluster() != tr.Cluster() ||
		loaded.UniqueWorkers() != tr.UniqueWorkers() {
		t.Errorf("loaded trace metadata differs: %v vs %v", loaded, tr)
	}
	// A reloaded trace simulates to the same report.
	a, err := pred.Simulate(ctx, tr, maya.WithOracleAnnotation())
	if err != nil {
		t.Fatal(err)
	}
	b, err := pred.Simulate(ctx, loaded, maya.WithOracleAnnotation())
	if err != nil {
		t.Fatal(err)
	}
	if stripStages(a) != stripStages(b) {
		t.Errorf("reloaded trace simulates differently:\n%+v\n%+v", a, b)
	}

	// Version mismatch and truncation surface typed errors.
	patched := append([]byte(nil), raw...)
	patched[6], patched[7] = 0x7F, 0x7F
	if _, err := maya.ReadTrace(bytes.NewReader(patched)); !errors.Is(err, maya.ErrTraceVersion) {
		t.Errorf("version mismatch: err = %v, want ErrTraceVersion", err)
	}
	if _, err := maya.ReadTrace(bytes.NewReader(raw[:len(raw)/3])); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated trace: err = %v, want io.ErrUnexpectedEOF", err)
	}
	if _, err := maya.ReadTrace(bytes.NewReader([]byte("not a trace at all, just words"))); !errors.Is(err, maya.ErrTraceFormat) {
		t.Errorf("garbage input: err = %v, want ErrTraceFormat", err)
	}
}

func TestTraceClusterMismatch(t *testing.T) {
	ctx := context.Background()
	pred, w := tracePredictor(t)
	tr, err := pred.Capture(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	other, err := maya.NewPredictor(maya.DGXH100(4), maya.ProfileLLM)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Simulate(ctx, tr, maya.WithOracleAnnotation()); err == nil {
		t.Fatal("Simulate accepted a trace captured for a different cluster")
	}
}

func TestWithSeedNamespacesMeasurement(t *testing.T) {
	ctx := context.Background()
	pred, w := tracePredictor(t)

	a1, err := pred.MeasureActual(ctx, w, maya.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := pred.MeasureActual(ctx, w, maya.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := pred.MeasureActual(ctx, w, maya.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if a1.IterTime != a2.IterTime {
		t.Errorf("same seed, different measurements: %v vs %v", a1.IterTime, a2.IterTime)
	}
	if a1.IterTime == b.IterTime {
		t.Errorf("different seeds produced identical measurements: %v", a1.IterTime)
	}

	// The construction-time default seeds the same machinery.
	seeded, err := maya.NewPredictor(maya.DGXV100(1), maya.ProfileLLM, maya.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	c, err := seeded.MeasureActual(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if c.IterTime != b.IterTime {
		t.Errorf("predictor-level seed disagrees with per-call seed: %v vs %v", c.IterTime, b.IterTime)
	}
}

func TestPredictBatchSharesCaptures(t *testing.T) {
	ctx := context.Background()
	pred, w := tracePredictor(t)

	// The same workload value three ways: two ground-truth predictions
	// and a physical replay — one emulation serves all three.
	reqs := []maya.Request{
		{Workload: w, Options: []maya.PredictOption{maya.WithOracleAnnotation()}},
		{Workload: w, Options: []maya.PredictOption{maya.WithOracleAnnotation(), maya.WithModelFLOPs(1e15)}},
		{Workload: w, Options: []maya.PredictOption{maya.WithPhysicalReplay()}},
	}
	results, err := pred.PredictBatch(ctx, reqs)
	if err != nil {
		t.Fatalf("PredictBatch: %v", err)
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("request %d: %v", i, res.Err)
		}
	}

	// Byte-identical to the individual call path.
	one, err := pred.Predict(ctx, w, maya.WithOracleAnnotation())
	if err != nil {
		t.Fatal(err)
	}
	if stripStages(results[0].Report) != stripStages(one) {
		t.Errorf("batch result diverged from Predict:\n%+v\n%+v", results[0].Report, one)
	}
	withFLOPs := stripStages(results[1].Report)
	if withFLOPs.MFU <= 0 {
		t.Errorf("batch request with FLOPs lost its MFU: %+v", withFLOPs)
	}
	actual, err := pred.MeasureActual(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	if stripStages(results[2].Report) != stripStages(actual) {
		t.Errorf("batch physical replay diverged from MeasureActual:\n%+v\n%+v", results[2].Report, actual)
	}

	// Exactly one request per shared group pays (and reports) the
	// capture; the reusing requests report zero emulate/collate, so
	// stage timings sum correctly over the batch.
	var paid int
	for _, res := range results {
		if res.Report.Stages.Emulate > 0 {
			paid++
		}
	}
	if paid != 1 {
		t.Errorf("%d batch reports carry capture cost, want exactly 1", paid)
	}
}

// TestReadTraceCorruption hardens the deserializer against damaged
// artifacts: every truncation length and single-bit flip tried must
// surface a typed error — never a panic, never a silently-wrong
// trace. This is the contract the serve layer's upload endpoint
// relies on to 400 bad payloads. Offsets are sampled (the header and
// checksum exhaustively, the payload on a stride) because each probe
// re-checksums the whole blob and exhaustive coverage is quadratic.
func TestReadTraceCorruption(t *testing.T) {
	ctx := context.Background()
	pred, w := tracePredictor(t)
	tr, err := pred.Capture(ctx, w)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	isTyped := func(err error) bool {
		return errors.Is(err, maya.ErrTraceFormat) ||
			errors.Is(err, maya.ErrTraceVersion) ||
			errors.Is(err, io.ErrUnexpectedEOF)
	}
	// All 16 header bytes (magic + version + length), the trailing
	// checksum, and stride-sampled payload offsets.
	const headerLen, sumLen = 16, 8
	offsets := make(map[int]bool)
	for off := 0; off < headerLen && off < len(raw); off++ {
		offsets[off] = true
	}
	for off := len(raw) - sumLen; off < len(raw); off++ {
		offsets[off] = true
	}
	stride := (len(raw) - headerLen - sumLen) / 128
	if stride < 1 {
		stride = 1
	}
	for off := headerLen; off < len(raw)-sumLen; off += stride {
		offsets[off] = true
	}

	t.Run("truncated", func(t *testing.T) {
		for n := range offsets {
			_, err := maya.ReadTrace(bytes.NewReader(raw[:n]))
			if err == nil {
				t.Fatalf("truncation to %d/%d bytes read successfully", n, len(raw))
			}
			if !isTyped(err) {
				t.Fatalf("truncation to %d bytes: untyped error %v", n, err)
			}
		}
		if _, err := maya.ReadTrace(bytes.NewReader(nil)); !isTyped(err) {
			t.Fatalf("empty input: err = %v, want typed error", err)
		}
	})

	t.Run("bit-flipped", func(t *testing.T) {
		// Header flips exercise the magic, version, and length paths;
		// payload and checksum flips must disagree with each other. A
		// single-bit flip cannot cancel out against FNV-1a.
		for off := range offsets {
			for bit := 0; bit < 8; bit++ {
				patched := append([]byte(nil), raw...)
				patched[off] ^= 1 << bit
				_, err := maya.ReadTrace(bytes.NewReader(patched))
				if err == nil {
					t.Fatalf("flip of byte %d bit %d went undetected", off, bit)
				}
				if !isTyped(err) {
					t.Fatalf("flip of byte %d bit %d: untyped error %v", off, bit, err)
				}
			}
		}
	})

	t.Run("error-classes", func(t *testing.T) {
		// Magic damage is a format error.
		patched := append([]byte(nil), raw...)
		patched[0] = 'X'
		if _, err := maya.ReadTrace(bytes.NewReader(patched)); !errors.Is(err, maya.ErrTraceFormat) {
			t.Errorf("bad magic: err = %v, want ErrTraceFormat", err)
		}
		// Version damage is a version error, distinguishable from rot.
		patched = append([]byte(nil), raw...)
		patched[7]++
		if _, err := maya.ReadTrace(bytes.NewReader(patched)); !errors.Is(err, maya.ErrTraceVersion) {
			t.Errorf("future version: err = %v, want ErrTraceVersion", err)
		}
		// Checksum damage is a format error (payload intact, sum not).
		patched = append([]byte(nil), raw...)
		patched[len(patched)-1] ^= 0xFF
		if _, err := maya.ReadTrace(bytes.NewReader(patched)); !errors.Is(err, maya.ErrTraceFormat) {
			t.Errorf("bad checksum: err = %v, want ErrTraceFormat", err)
		}
		// Payload damage trips the checksum before JSON ever runs.
		patched = append([]byte(nil), raw...)
		patched[20] ^= 0x01
		if _, err := maya.ReadTrace(bytes.NewReader(patched)); !errors.Is(err, maya.ErrTraceFormat) {
			t.Errorf("payload rot: err = %v, want ErrTraceFormat", err)
		}
	})
}
